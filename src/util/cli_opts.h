// Position-independent CLI option extraction, shared by the tool front ends
// (`wbist`, `wbist_bench`). Flags like `--metrics-json`, `--trace-json` and
// `--provenance-jsonl` are accepted anywhere on the command line, in both
// the `--flag path` and `--flag=path` forms, and are *stripped* from the
// argument vector before subcommand dispatch so positional parsing never
// sees them.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace wbist::util {

enum class ExtractResult {
  kAbsent,        ///< flag not present; `value` untouched
  kFound,         ///< flag present; `value` holds the last occurrence's value
  kMissingValue,  ///< trailing `--flag` with no value (usage error)
};

/// Remove every `--flag <value>` / `--flag=<value>` occurrence of `flag`
/// (pass it with the leading dashes) from `args`. When the flag appears more
/// than once the last value wins. A present-but-empty value (`--flag=`)
/// reports kFound with an empty string — callers that require a path should
/// treat that as a usage error.
ExtractResult extract_option(std::vector<std::string>& args,
                             std::string_view flag, std::string& value);

}  // namespace wbist::util
