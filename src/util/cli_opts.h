// Position-independent CLI option extraction, shared by the tool front ends
// (`wbist`, `wbist_bench`). Flags like `--metrics-json`, `--trace-json` and
// `--provenance-jsonl` are accepted anywhere on the command line, in both
// the `--flag path` and `--flag=path` forms, and are *stripped* from the
// argument vector before subcommand dispatch so positional parsing never
// sees them.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace wbist::util {

enum class ExtractResult {
  kAbsent,        ///< flag not present; `value` untouched
  kFound,         ///< flag present; `value` holds the last occurrence's value
  kMissingValue,  ///< trailing `--flag` with no value (usage error)
};

/// Remove every `--flag <value>` / `--flag=<value>` occurrence of `flag`
/// (pass it with the leading dashes) from `args`.
///
/// Duplicate flags are allowed and the *last* occurrence wins; all
/// occurrences are stripped. On kFound, `value` is overwritten with the
/// winning value; a present-but-empty value (`--flag=`) reports kFound with
/// an empty string — callers that require a path should treat that as a
/// usage error. On kAbsent and kMissingValue both `args` and `value` are
/// left untouched (kMissingValue in particular never publishes a value from
/// an earlier duplicate occurrence).
ExtractResult extract_option(std::vector<std::string>& args,
                             std::string_view flag, std::string& value);

}  // namespace wbist::util
