// Drop-oldest snapshot ring: a fixed-capacity circular buffer of trivially
// copyable records with a monotone push counter. New entries overwrite the
// oldest once the ring is full, so the ring always holds the most recent
// `capacity` records — the shape a flight recorder wants.
//
// Two read paths:
//   - snapshot(): mutex-protected, oldest-first copy for normal inspection
//     (the serve `flight` control job).
//   - crash_copy(): lock-free best-effort copy for fatal-signal handlers.
//     It reads the storage without taking the mutex, so a record that is
//     mid-overwrite may be torn; entries are PODs with no pointers, so a
//     torn read is garbled text, never UB the handler can trip over. This
//     trade (possible one-record tear vs. a handler that can deadlock on a
//     mutex the crashed thread holds) is deliberate.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <type_traits>
#include <vector>

namespace wbist::util {

template <typename T>
class SnapshotRing {
  static_assert(std::is_trivially_copyable_v<T>,
                "SnapshotRing entries must be trivially copyable (the crash "
                "path memcpy-reads them without synchronization)");

 public:
  explicit SnapshotRing(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity),
        slots_(capacity == 0 ? 1 : capacity) {}

  std::size_t capacity() const { return capacity_; }

  /// Total records ever pushed (dropped = pushed - min(pushed, capacity)).
  std::uint64_t pushed() const {
    return pushed_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {
    const std::uint64_t p = pushed();
    return p > capacity_ ? p - capacity_ : 0;
  }

  void push(const T& v) {
    std::lock_guard<std::mutex> lk(mu_);
    const std::uint64_t n = pushed_.load(std::memory_order_relaxed);
    slots_[static_cast<std::size_t>(n % capacity_)] = v;
    pushed_.store(n + 1, std::memory_order_release);
  }

  /// Oldest-first copy of the currently retained records.
  std::vector<T> snapshot() const {
    std::lock_guard<std::mutex> lk(mu_);
    return copy_unlocked();
  }

  /// Fatal-signal-path copy: same oldest-first order, no locking. Records
  /// being overwritten concurrently may be torn; see the header comment.
  std::vector<T> crash_copy() const { return copy_unlocked(); }

  /// Crash-path variant that writes into caller storage (no allocation).
  /// Returns the number of records copied, oldest first.
  std::size_t crash_copy_into(T* out, std::size_t out_cap) const {
    const std::uint64_t p = pushed_.load(std::memory_order_acquire);
    const std::size_t have =
        p < capacity_ ? static_cast<std::size_t>(p) : capacity_;
    const std::size_t n = have < out_cap ? have : out_cap;
    const std::uint64_t first = p - n;
    for (std::size_t i = 0; i < n; ++i)
      out[i] = slots_[static_cast<std::size_t>((first + i) % capacity_)];
    return n;
  }

 private:
  std::vector<T> copy_unlocked() const {
    const std::uint64_t p = pushed_.load(std::memory_order_acquire);
    const std::size_t have =
        p < capacity_ ? static_cast<std::size_t>(p) : capacity_;
    std::vector<T> out;
    out.reserve(have);
    const std::uint64_t first = p - have;
    for (std::size_t i = 0; i < have; ++i)
      out.push_back(slots_[static_cast<std::size_t>((first + i) % capacity_)]);
    return out;
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<T> slots_;
  std::atomic<std::uint64_t> pushed_{0};
};

}  // namespace wbist::util
