// Minimal JSON support shared by every writer and by the serve protocol.
//
// Writing: append_json_string() is the one string escaper for all emitted
// JSON (metrics, traces, provenance, serve responses). It escapes the two
// mandatory characters (`"` and `\`), uses the short forms for `\n` and
// `\t`, and `\u00XX`-escapes every other control character, so no input
// byte is ever silently dropped. Bytes >= 0x20 pass through unchanged
// (UTF-8 stays UTF-8).
//
// Reading: a small recursive-descent parser for the serve request/response
// payloads. It accepts strict JSON (RFC 8259) with the one relaxation that
// numbers are surfaced as doubles plus an exact-integer view. Depth is
// bounded to keep adversarial inputs from overflowing the stack.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace wbist::util {

/// Append `s` to `out` as a quoted, escaped JSON string literal.
void append_json_string(std::string& out, std::string_view s);

/// The escaped literal alone (convenience for tests and small writers).
std::string json_quote(std::string_view s);

/// A parsed JSON value. Objects preserve no duplicate keys (last wins, as
/// every mainstream parser does) and are stored sorted for deterministic
/// iteration.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  /// Type-checked accessors; each throws std::runtime_error (with the
  /// expected/actual kinds) on mismatch.
  bool as_bool() const;
  double as_number() const;
  /// The number as an integer; throws when the value is not integral or
  /// does not fit in int64.
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  const std::map<std::string, JsonValue>& as_object() const;

  /// Object member lookup; nullptr when absent or when this is no object.
  const JsonValue* get(std::string_view key) const;

  /// Convenience lookups with defaults, for optional request fields.
  std::string get_string(std::string_view key,
                         std::string_view fallback = "") const;
  std::int64_t get_int(std::string_view key, std::int64_t fallback = 0) const;
  bool get_bool(std::string_view key, bool fallback = false) const;

  // -- construction (used by the parser and by response builders) -----------
  static JsonValue null();
  static JsonValue boolean(bool b);
  static JsonValue number(double v);
  static JsonValue string(std::string s);
  static JsonValue array(std::vector<JsonValue> items);
  static JsonValue object(std::map<std::string, JsonValue> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::map<std::string, JsonValue> obj_;
};

/// Parse one JSON document (the whole of `text` modulo surrounding
/// whitespace). Throws std::runtime_error with a byte offset on malformed
/// input, trailing garbage, or nesting deeper than 64 levels. `\uXXXX`
/// escapes are decoded to UTF-8 (surrogate pairs included).
JsonValue json_parse(std::string_view text);

}  // namespace wbist::util
