#include "util/out_dir.h"

#include <cstdlib>
#include <filesystem>

namespace wbist::util {

std::string out_path(const std::string& filename) {
  const char* dir = std::getenv("WBIST_OUT_DIR");
  if (dir == nullptr || *dir == '\0') return filename;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort
  return (std::filesystem::path(dir) / filename).string();
}

}  // namespace wbist::util
