// Small string utilities shared by the parser and the report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace wbist::util {

/// Remove leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Split on a separator character; empty fields are preserved.
std::vector<std::string_view> split(std::string_view s, char sep);

/// Split on runs of ASCII whitespace; no empty fields.
std::vector<std::string_view> split_ws(std::string_view s);

/// True if `s` starts with `prefix` (ASCII case-insensitive).
bool starts_with_icase(std::string_view s, std::string_view prefix);

/// ASCII upper-case copy.
std::string to_upper(std::string_view s);

/// Format a double with fixed `digits` decimals (e.g. fault efficiencies).
std::string fixed(double value, int digits);

}  // namespace wbist::util
