#include "util/jsonl.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace wbist::util {

void JsonlWriter::open(const std::string& path, bool append) {
  close();
  file_ = std::fopen(path.c_str(), append ? "ab" : "wb");
  if (file_ == nullptr)
    throw std::runtime_error("jsonl: cannot open '" + path +
                             "': " + std::strerror(errno));
}

void JsonlWriter::write_line(std::string_view json) {
  if (file_ == nullptr) throw std::runtime_error("jsonl: writer not open");
  if (std::fwrite(json.data(), 1, json.size(), file_) != json.size() ||
      std::fputc('\n', file_) == EOF || std::fflush(file_) != 0)
    throw std::runtime_error("jsonl: write failed");
}

void JsonlWriter::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

JsonlReadResult read_jsonl_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    throw std::runtime_error("jsonl: cannot open '" + path +
                             "': " + std::strerror(errno));
  JsonlReadResult result;
  std::string line;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    std::size_t start = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (buf[i] != '\n') continue;
      line.append(buf + start, i - start);
      result.lines.push_back(std::move(line));
      line.clear();
      start = i + 1;
    }
    line.append(buf + start, n - start);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error)
    throw std::runtime_error("jsonl: read failed for '" + path + "'");
  result.truncated_trailer = !line.empty();
  return result;
}

}  // namespace wbist::util
