#include "util/cli_opts.h"

namespace wbist::util {

ExtractResult extract_option(std::vector<std::string>& args,
                             std::string_view flag, std::string& value) {
  // Parse into a local first: kMissingValue must leave both `args` and
  // `value` exactly as the caller passed them, even when an *earlier*
  // occurrence already produced a value (e.g. `--x=a ... --x` used to
  // clobber `value` with "a" and then report the usage error).
  ExtractResult result = ExtractResult::kAbsent;
  std::string extracted;
  std::vector<std::string> kept;
  kept.reserve(args.size());
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == flag) {
      if (i + 1 >= args.size()) return ExtractResult::kMissingValue;
      extracted = args[++i];
      result = ExtractResult::kFound;
    } else if (arg.size() > flag.size() && arg.compare(0, flag.size(), flag) == 0 &&
               arg[flag.size()] == '=') {
      extracted = arg.substr(flag.size() + 1);
      result = ExtractResult::kFound;
    } else {
      kept.push_back(arg);
    }
  }
  if (result == ExtractResult::kFound) value = std::move(extracted);
  args = std::move(kept);
  return result;
}

}  // namespace wbist::util
