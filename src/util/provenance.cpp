#include "util/provenance.h"

#include <stdexcept>

#include "util/json.h"

namespace wbist::util {

ProvenanceLog& ProvenanceLog::global() {
  static ProvenanceLog* instance = new ProvenanceLog;  // never destroyed
  return *instance;
}

void ProvenanceLog::open(const std::string& path) {
  std::lock_guard<std::mutex> lk(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
    enabled_.store(false, std::memory_order_relaxed);
  }
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr)
    throw std::runtime_error("provenance: cannot write " + path);
  std::fputs("{\"schema\":\"wbist.provenance/1\",\"event\":\"header\"}\n",
             file_);
  enabled_.store(true, std::memory_order_release);
}

void ProvenanceLog::close() {
  std::lock_guard<std::mutex> lk(mu_);
  enabled_.store(false, std::memory_order_release);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

namespace {

// The shared escaper \u00XX-escapes control characters instead of dropping
// them (site/phase strings used to lose bytes here).
void append_escaped(std::string& out, std::string_view s) {
  append_json_string(out, s);
}

}  // namespace

void ProvenanceLog::record(const Detection& d) {
  if (!enabled()) return;
  std::string line = "{\"event\":\"detect\",\"phase\":";
  append_escaped(line, d.phase);
  line += ",\"fault\":" + std::to_string(d.fault);
  line += ",\"site\":";
  append_escaped(line, d.site);
  line += ",\"class_size\":" + std::to_string(d.class_size);
  line += ",\"represented_size\":" + std::to_string(d.represented_size);
  line += ",\"session\":" + std::to_string(d.session);
  line += ",\"assignment_rank\":" + std::to_string(d.assignment_rank);
  line += ",\"u\":" + std::to_string(d.u);
  line += ",\"obs\":";
  append_escaped(line, d.obs);
  line += "}\n";

  std::lock_guard<std::mutex> lk(mu_);
  if (file_ == nullptr) return;  // closed between the guard and the lock
  std::fwrite(line.data(), 1, line.size(), file_);
}

}  // namespace wbist::util
