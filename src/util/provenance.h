// Fault-detection provenance: an opt-in JSONL stream that records *why* each
// fault counts as detected — which pipeline phase detected it, under which
// weighted session / assignment, at which time unit, and at which observed
// line — turning an aggregate "fault efficiency = 99.2%" into an auditable
// per-fault artifact.
//
// Schema "wbist.provenance/1": the first line is a header record
//   {"schema":"wbist.provenance/1","event":"header"}
// and every following line is one detection event
//   {"event":"detect","phase":"tgen|procedure|reverse_sim|obs_points|
//     extended.random","fault":<representative id>,"site":"G11 s-a-1",
//     "class_size":N,"represented_size":N,"session":K,"assignment_rank":J,
//     "u":U,"obs":"G17"}
// where `fault` is the representative's id in the (possibly collapsed)
// simulated fault list, `class_size`/`represented_size` expand it over the
// uncollapsed universe (see fault::FaultSet), `session` and
// `assignment_rank` are -1 where not applicable, `u` is the detection time
// unit and `obs` the first detecting observed line ("" when not tracked).
//
// Like util::metrics and util::trace, the log is observation-only: the run's
// results are bit-identical with the log enabled or disabled. Emission sites
// guard on enabled() (one relaxed load) before building any record, and
// writes happen on the result-processing paths (after a fault simulation
// returns), never inside simulation kernels.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>

namespace wbist::util {

class ProvenanceLog {
 public:
  /// One detection event; see the schema comment above.
  struct Detection {
    std::string_view phase;            ///< pipeline phase that detected it
    std::uint32_t fault = 0;           ///< representative fault id
    std::string_view site;             ///< fault::fault_name() of the rep.
    std::uint64_t class_size = 1;      ///< equivalence-class size
    std::uint64_t represented_size = 1;///< class + absorbed dominator classes
    std::int64_t session = -1;         ///< weighted-session / Ω index
    std::int64_t assignment_rank = -1; ///< candidate rank within the session
    std::int64_t u = -1;               ///< detection time unit
    std::string_view obs;              ///< first detecting observed line
  };

  /// The process-wide log the library instrumentation writes to.
  static ProvenanceLog& global();

  /// Open `path` for writing and start logging (emits the header line).
  /// Throws std::runtime_error if the file cannot be opened.
  void open(const std::string& path);

  /// Flush and stop logging. Safe to call when not open.
  void close();

  /// Fast guard for emission sites: one relaxed atomic load.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Append one detection line (no-op when not enabled).
  void record(const Detection& d);

 private:
  std::atomic<bool> enabled_{false};
  std::mutex mu_;
  std::FILE* file_ = nullptr;  // guarded by mu_
};

/// Shorthand for ProvenanceLog::global().
inline ProvenanceLog& provenance() { return ProvenanceLog::global(); }

}  // namespace wbist::util
