#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <utility>

namespace wbist::util {

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  append_json_string(out, s);
  return out;
}

// -- JsonValue ---------------------------------------------------------------

namespace {

[[noreturn]] void kind_error(std::string_view wanted, JsonValue::Kind got) {
  static constexpr const char* kNames[] = {"null",   "bool",  "number",
                                           "string", "array", "object"};
  throw std::runtime_error("json: expected " + std::string(wanted) +
                           ", got " + kNames[static_cast<int>(got)]);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("bool", kind_);
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) kind_error("number", kind_);
  return num_;
}

std::int64_t JsonValue::as_int() const {
  const double v = as_number();
  if (std::nearbyint(v) != v ||
      v < static_cast<double>(std::numeric_limits<std::int64_t>::min()) ||
      v >= static_cast<double>(std::numeric_limits<std::int64_t>::max()))
    throw std::runtime_error("json: number is not a representable integer");
  return static_cast<std::int64_t>(v);
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) kind_error("string", kind_);
  return str_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) kind_error("array", kind_);
  return arr_;
}

const std::map<std::string, JsonValue>& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  return obj_;
}

const JsonValue* JsonValue::get(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = obj_.find(std::string(key));
  return it == obj_.end() ? nullptr : &it->second;
}

std::string JsonValue::get_string(std::string_view key,
                                  std::string_view fallback) const {
  const JsonValue* v = get(key);
  return v != nullptr && v->kind_ == Kind::kString ? v->str_
                                                   : std::string(fallback);
}

std::int64_t JsonValue::get_int(std::string_view key,
                                std::int64_t fallback) const {
  const JsonValue* v = get(key);
  return v != nullptr && v->kind_ == Kind::kNumber ? v->as_int() : fallback;
}

bool JsonValue::get_bool(std::string_view key, bool fallback) const {
  const JsonValue* v = get(key);
  return v != nullptr && v->kind_ == Kind::kBool ? v->bool_ : fallback;
}

JsonValue JsonValue::null() { return JsonValue(); }

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(double x) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.num_ = x;
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.arr_ = std::move(items);
  return v;
}

JsonValue JsonValue::object(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.obj_ = std::move(members);
  return v;
}

// -- parser ------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at byte " +
                             std::to_string(pos_));
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  char take() {
    if (eof()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect(char c) {
    if (eof() || peek() != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    if (eof()) fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue::string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue::boolean(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue::boolean(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue::null();
      default: return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    std::map<std::string, JsonValue> members;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return JsonValue::object(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      members[std::move(key)] = parse_value(depth + 1);
      skip_ws();
      const char c = take();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return JsonValue::object(std::move(members));
  }

  JsonValue parse_array(int depth) {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return JsonValue::array(std::move(items));
    }
    while (true) {
      skip_ws();
      items.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = take();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return JsonValue::array(std::move(items));
  }

  unsigned parse_hex4() {
    unsigned v = 0;
    for (int k = 0; k < 4; ++k) {
      const char c = take();
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad \\u escape");
    }
    return v;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xc0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xe0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      const char e = take();
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xd800 && cp <= 0xdbff) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (take() != '\\' || take() != 'u') fail("lone high surrogate");
            const unsigned lo = parse_hex4();
            if (lo < 0xdc00 || lo > 0xdfff) fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
          } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("bad escape character");
      }
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    if (!eof() && peek() == '.') {
      ++pos_;
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("malformed number");
    }
    return JsonValue::number(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace wbist::util
