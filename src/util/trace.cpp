#include "util/trace.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "util/json.h"

namespace wbist::util {

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  const std::uint64_t h = pushed();
  const std::uint64_t kept = std::min<std::uint64_t>(h, capacity_);
  std::vector<TraceEvent> out;
  out.reserve(static_cast<std::size_t>(kept));
  // Oldest retained event first: with no wrap that is index 0, after a wrap
  // it is the slot the next push would overwrite.
  const std::uint64_t first = h - kept;
  for (std::uint64_t k = 0; k < kept; ++k)
    out.push_back(events_[static_cast<std::size_t>((first + k) % capacity_)]);
  return out;
}

TraceRegistry& TraceRegistry::global() {
  static TraceRegistry* instance = new TraceRegistry;  // never destroyed
  return *instance;
}

void TraceRegistry::start(std::size_t capacity_per_thread) {
  std::lock_guard<std::mutex> lk(mu_);
  buffers_.clear();
  next_tid_ = 0;
  capacity_ = std::max<std::size_t>(capacity_per_thread, 16);
  t0_ = std::chrono::steady_clock::now();
  session_.fetch_add(1, std::memory_order_release);
  trace_internal::g_enabled.store(true, std::memory_order_release);
}

void TraceRegistry::stop() {
  trace_internal::g_enabled.store(false, std::memory_order_release);
}

TraceBuffer& TraceRegistry::thread_buffer() {
  thread_local TraceBuffer* cached = nullptr;
  thread_local std::uint64_t cached_session = 0;
  const std::uint64_t session = session_.load(std::memory_order_acquire);
  if (cached == nullptr || cached_session != session) {
    std::lock_guard<std::mutex> lk(mu_);
    buffers_.push_back(std::make_unique<TraceBuffer>(next_tid_++, capacity_));
    cached = buffers_.back().get();
    cached_session = session;
  }
  return *cached;
}

std::uint64_t TraceRegistry::dropped_events() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t dropped = 0;
  for (const auto& b : buffers_) dropped += b->dropped();
  return dropped;
}

namespace {

void append_escaped(std::string& out, std::string_view s) {
  append_json_string(out, s);
}

void append_args(std::string& out, const TraceEvent& e) {
  out += "\"args\":{";
  for (std::uint8_t a = 0; a < e.n_args; ++a) {
    const TraceArg& arg = e.args[a];
    if (a != 0) out += ",";
    append_escaped(out, arg.key != nullptr ? arg.key : "?");
    out += ":";
    char buf[32];
    switch (arg.kind) {
      case TraceArg::Kind::kI64:
        out += std::to_string(arg.value.i64);
        break;
      case TraceArg::Kind::kU64:
        out += std::to_string(arg.value.u64);
        break;
      case TraceArg::Kind::kF64:
        std::snprintf(buf, sizeof buf, "%.9g", arg.value.f64);
        out += buf;
        break;
      case TraceArg::Kind::kStr:
        append_escaped(out, arg.value.str != nullptr ? arg.value.str : "");
        break;
      case TraceArg::Kind::kStrCopy:
        append_escaped(out, arg.copy_buf);
        break;
      case TraceArg::Kind::kNone:
        out += "null";
        break;
    }
  }
  out += "}";
}

/// Microseconds with nanosecond resolution, as Chrome's "ts"/"dur" expect.
void append_us(std::string& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%llu.%03u",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned>(ns % 1000));
  out += buf;
}

}  // namespace

std::string TraceRegistry::to_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out = "{\n\"schema\": \"wbist.trace/1\",\n";
  out += "\"displayTimeUnit\": \"ms\",\n";

  std::uint64_t dropped = 0, total = 0;
  for (const auto& b : buffers_) {
    dropped += b->dropped();
    total += b->pushed();
  }
  out += "\"otherData\": {\"threads\": " + std::to_string(buffers_.size()) +
         ", \"events\": " + std::to_string(total) +
         ", \"dropped_events\": " + std::to_string(dropped) + "},\n";

  out += "\"traceEvents\": [";
  bool first = true;
  const auto sep = [&]() -> std::string& {
    out += first ? "\n" : ",\n";
    first = false;
    return out;
  };
  for (const auto& b : buffers_) {
    const std::string tid = std::to_string(b->tid());
    sep() += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" + tid +
             ",\"args\":{\"name\":\"" +
             (b->tid() == 0 ? std::string("thread-0 (first tracer)")
                            : "thread-" + tid) +
             "\"}}";
    if (b->dropped() != 0)
      sep() += "{\"name\":\"trace.dropped_events\",\"ph\":\"C\",\"ts\":0,"
               "\"pid\":1,\"tid\":" + tid + ",\"args\":{\"value\":" +
               std::to_string(b->dropped()) + "}}";
    for (const TraceEvent& e : b->snapshot()) {
      sep() += "{\"name\":";
      append_escaped(out, e.name != nullptr ? e.name : "?");
      switch (e.type) {
        case TraceEvent::Type::kSpan:
          out += ",\"ph\":\"X\",\"ts\":";
          append_us(out, e.ts_ns);
          out += ",\"dur\":";
          append_us(out, e.dur_ns);
          break;
        case TraceEvent::Type::kInstant:
          out += ",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
          append_us(out, e.ts_ns);
          break;
        case TraceEvent::Type::kCounter:
          out += ",\"ph\":\"C\",\"ts\":";
          append_us(out, e.ts_ns);
          break;
      }
      out += ",\"pid\":1,\"tid\":" + tid + ",";
      append_args(out, e);
      out += "}";
    }
  }
  out += first ? "]\n}\n" : "\n]\n}\n";
  return out;
}

void TraceRegistry::write_json(const std::string& path) const {
  const std::string json = to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw std::runtime_error("trace: cannot write " + path);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
}

void TraceSpan::begin(const char* name) {
  name_ = name;
  start_ns_ = TraceRegistry::global().now_ns();
  live_ = true;
}

void TraceSpan::end() {
  live_ = false;
  if (!trace_enabled()) return;  // session stopped mid-span: drop the record
  TraceRegistry& reg = TraceRegistry::global();
  TraceEvent e;
  e.name = name_;
  e.ts_ns = start_ns_;
  e.dur_ns = reg.now_ns() - start_ns_;
  e.type = TraceEvent::Type::kSpan;
  e.n_args = n_args_;
  for (std::uint8_t a = 0; a < n_args_; ++a) e.args[a] = args_[a];
  reg.emit(e);
}

namespace {

void emit_instant(const char* name, const TraceArg* args, std::uint8_t n) {
  TraceRegistry& reg = TraceRegistry::global();
  TraceEvent e;
  e.name = name;
  e.ts_ns = reg.now_ns();
  e.type = TraceEvent::Type::kInstant;
  e.n_args = n;
  for (std::uint8_t a = 0; a < n; ++a) e.args[a] = args[a];
  reg.emit(e);
}

}  // namespace

void trace_instant(const char* name) {
  if (trace_enabled()) emit_instant(name, nullptr, 0);
}

void trace_instant(const char* name, TraceArg a0) {
  if (!trace_enabled()) return;
  const TraceArg args[] = {a0};
  emit_instant(name, args, 1);
}

void trace_instant(const char* name, TraceArg a0, TraceArg a1) {
  if (!trace_enabled()) return;
  const TraceArg args[] = {a0, a1};
  emit_instant(name, args, 2);
}

void trace_instant(const char* name, TraceArg a0, TraceArg a1, TraceArg a2) {
  if (!trace_enabled()) return;
  const TraceArg args[] = {a0, a1, a2};
  emit_instant(name, args, 3);
}

void trace_counter(const char* name, double value) {
  if (!trace_enabled()) return;
  TraceRegistry& reg = TraceRegistry::global();
  TraceEvent e;
  e.name = name;
  e.ts_ns = reg.now_ns();
  e.type = TraceEvent::Type::kCounter;
  e.n_args = 1;
  e.args[0] = TraceArg("value", value);
  reg.emit(e);
}

}  // namespace wbist::util
