#include "util/table.h"

#include <algorithm>
#include <cctype>

namespace wbist::util {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '.' &&
        c != '-' && c != '+' && c != '%')
      return false;
  }
  return true;
}

}  // namespace

std::string Table::render() const {
  std::vector<std::size_t> widths;
  auto widen = [&widths](const std::vector<std::string>& cells) {
    if (widths.size() < cells.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::string out;
  auto emit = [&](const std::vector<std::string>& cells, bool align_numbers) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string cell = i < cells.size() ? cells[i] : std::string{};
      const std::size_t pad = widths[i] - cell.size();
      const bool right = align_numbers && looks_numeric(cell);
      if (i != 0) out += "  ";
      if (right) out.append(pad, ' ');
      out += cell;
      if (!right) out.append(pad, ' ');
    }
    // Trim trailing spaces for clean diffs.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };

  if (!title_.empty()) out += title_ + "\n";
  if (!header_.empty()) {
    emit(header_, /*align_numbers=*/false);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w;
    total += 2 * (widths.empty() ? 0 : widths.size() - 1);
    out.append(total, '-');
    out += '\n';
  }
  for (const auto& r : rows_) emit(r, /*align_numbers=*/true);
  return out;
}

}  // namespace wbist::util
