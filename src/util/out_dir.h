// Artifact output-directory resolution for the example and experiment
// binaries. Tools that emit files for inspection (generator netlists,
// synthesized BIST circuits) historically wrote into the current working
// directory, which litters the source tree when run from a checkout. They
// now route every artifact path through out_path().
#pragma once

#include <string>

namespace wbist::util {

/// Resolve an artifact filename against the WBIST_OUT_DIR environment
/// variable. When WBIST_OUT_DIR is set and non-empty the directory is
/// created if needed and "<dir>/<filename>" is returned; otherwise the
/// filename is returned unchanged (current working directory).
std::string out_path(const std::string& filename);

}  // namespace wbist::util
