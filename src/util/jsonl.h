// Append-only JSONL (one JSON document per line) file support.
//
// JSONL is the repo's durable-stream format (provenance records, campaign
// checkpoints): appends are atomic at the line level, a reader never needs
// the whole file in memory, and a crash mid-write loses at most the line
// being written. This module factors the two halves every stream needs:
//
//   * JsonlWriter — line-buffered appends with an explicit flush after every
//     line, so a record is on its way to disk the moment write_line()
//     returns. Open modes: truncate (a fresh stream) or append (resuming an
//     existing one).
//
//   * read_jsonl_file — a *tolerant* reader for crash-surviving streams: it
//     returns every newline-terminated line and reports (instead of
//     failing on) a truncated trailer — the partial last line a killed
//     writer leaves behind. Interpreting the lines (parsing, schema checks,
//     duplicate handling) is the caller's business; this layer only decides
//     what counts as a complete record.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace wbist::util {

class JsonlWriter {
 public:
  JsonlWriter() = default;
  ~JsonlWriter() { close(); }

  JsonlWriter(const JsonlWriter&) = delete;
  JsonlWriter& operator=(const JsonlWriter&) = delete;

  /// Open `path`, truncating when `append` is false. Throws
  /// std::runtime_error when the file cannot be opened.
  void open(const std::string& path, bool append);

  bool is_open() const { return file_ != nullptr; }

  /// Append one line (the terminating '\n' is added here; `json` must not
  /// contain one) and flush. Throws std::runtime_error on write failure.
  void write_line(std::string_view json);

  void close();

 private:
  std::FILE* file_ = nullptr;
};

struct JsonlReadResult {
  /// Every newline-terminated line, in file order, without the '\n'.
  std::vector<std::string> lines;
  /// True when the file ended mid-line; the partial trailer is *not* in
  /// `lines` (it is the torn record of a writer that died mid-append).
  bool truncated_trailer = false;
};

/// Read a JSONL file tolerantly (see above). Throws std::runtime_error when
/// the file cannot be opened or read.
JsonlReadResult read_jsonl_file(const std::string& path);

}  // namespace wbist::util
