// A fixed-size pool of worker threads for deterministic parallel-for loops.
//
// The pool exists because the fault simulator's group loop is embarrassingly
// parallel: each 64-fault group owns disjoint result slots, so any schedule
// that runs every index exactly once produces bit-identical output. The pool
// therefore offers exactly one primitive — parallel_for over an index range
// with dynamic (atomic-counter) scheduling — plus a `rank` argument so
// callers can give each executing thread its own scratch buffers.
//
// The calling thread participates as rank 0; `thread_count - 1` background
// threads are ranks 1..thread_count-1. Threads are created once and parked on
// a condition variable between calls, so a parallel_for over a handful of
// groups costs two lock/notify handshakes, not thread creation.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wbist::util {

class WorkerPool {
 public:
  /// Total worker count *including* the calling thread; clamped to >= 1.
  explicit WorkerPool(unsigned thread_count);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Total worker count including the calling thread.
  unsigned size() const { return static_cast<unsigned>(threads_.size()) + 1; }

  /// Run fn(index, rank) for every index in [0, n), rank in [0, size()).
  /// Blocks until all indices completed. The first exception thrown by `fn`
  /// is rethrown on the calling thread (after all work has drained). Not
  /// reentrant: do not call parallel_for from inside `fn`.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, unsigned)>& fn);

  /// Map a user-facing thread knob to a concrete count:
  /// 0 -> hardware_concurrency (at least 1), anything else -> itself.
  static unsigned resolve(unsigned requested);

 private:
  void worker_main(unsigned rank);
  void drain(const std::function<void(std::size_t, unsigned)>& fn,
             std::size_t n, unsigned rank);

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;  // bumped per parallel_for; guarded by mu_
  bool stop_ = false;
  const std::function<void(std::size_t, unsigned)>* job_ = nullptr;
  std::size_t job_size_ = 0;
  std::exception_ptr error_;  // guarded by mu_
  unsigned active_ = 0;  // workers currently inside drain(); guarded by mu_

  std::atomic<std::size_t> next_{0};  // next index to claim

  std::vector<std::thread> threads_;
};

}  // namespace wbist::util
