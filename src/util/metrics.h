// Lightweight run-metrics registry: named counters, accumulated timers,
// log2-bucketed histograms and (x, y) series, collected process-wide and
// dumped as JSON (`wbist --metrics-json`, `wbist_bench`).
//
// Design constraints, in order:
//   1. Observation only. Nothing in this module feeds back into any
//      computation, so an instrumented run is bit-identical to an
//      uninstrumented one by construction.
//   2. Negligible overhead. Hot paths accumulate locally and flush once per
//      call (one relaxed atomic add per metric per fault-simulation run, not
//      per event); registry lookups happen per run, never per cycle.
//   3. Stable references. counter()/timer()/... return references that stay
//      valid for the registry's lifetime — reset() zeroes values in place and
//      never destroys entries, so cached references survive a reset (the
//      bench harness resets the global registry between circuits).
//
// Thread-safety: value updates are atomic (Series/Histogram bucket appends
// take a short mutex); find-or-create takes the registry mutex.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wbist::util {

/// Monotone event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Accumulated wall time plus the number of contributing intervals.
class TimerStat {
 public:
  void add_seconds(double s) {
    nanos_.fetch_add(static_cast<std::uint64_t>(s * 1e9),
                     std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  double seconds() const {
    return static_cast<double>(nanos_.load(std::memory_order_relaxed)) * 1e-9;
  }
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  void reset() {
    nanos_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> nanos_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// Power-of-two histogram: record(v) lands in bucket bit_width(v), i.e.
/// bucket k counts samples in [2^(k-1), 2^k) (bucket 0 counts v == 0).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void record(std::uint64_t v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  std::array<std::uint64_t, kBuckets> buckets() const;

  /// Quantile estimate (q in [0, 1]) from the log2 buckets, linearly
  /// interpolated inside the containing bucket's [2^(k-1), 2^k) range.
  /// Returns 0 for an empty histogram; the result is clamped to max(), so
  /// quantile(1.0) is the exact observed maximum.
  double quantile(double q) const;

  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Append-only (x, y) series — e.g. coverage over elapsed seconds. Points
/// are appended rarely (once per kept weight assignment), so a mutex is fine.
///
/// Growth is bounded: a series holds at most kMaxPoints points. When a push
/// would exceed the bound the series is decimated by 2 (every second point
/// is dropped) before the new point is appended, so long campaigns keep a
/// progressively coarser but bounded curve. The first point ever pushed and
/// the most recent push always survive decimation.
class Series {
 public:
  static constexpr std::size_t kMaxPoints = 4096;

  void push(double x, double y);
  std::vector<std::pair<double, double>> snapshot() const;
  void reset();

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<double, double>> points_;
};

class MetricsRegistry {
 public:
  /// The process-wide registry the library instrumentation writes to.
  static MetricsRegistry& global();

  /// Find-or-create. References remain valid for the registry's lifetime,
  /// across reset() calls included.
  Counter& counter(std::string_view name);
  TimerStat& timer(std::string_view name);
  Histogram& histogram(std::string_view name);
  Series& series(std::string_view name);

  /// Set a string-valued annotation (e.g. the resolved kernel backend).
  /// Last write wins; labels are cleared by reset().
  void set_label(std::string_view name, std::string_view value);

  /// Point-in-time snapshots for exporters (the serve `stats` job). The
  /// Histogram pointers stay valid for the registry's lifetime, like the
  /// references handed out by histogram().
  std::map<std::string, std::uint64_t> counter_values() const;
  std::vector<std::pair<std::string, const Histogram*>> histogram_entries()
      const;

  /// Zero every metric in place (entries and references survive).
  void reset();

  /// Stable JSON snapshot: keys sorted, fixed shape
  /// {"schema":"wbist.metrics/1","counters":{...},"timers":{...},
  ///  "histograms":{...},"series":{...},"labels":{...}}.
  std::string to_json() const;
  void write_json(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<TimerStat>, std::less<>> timers_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<Series>, std::less<>> series_;
  std::map<std::string, std::string, std::less<>> labels_;
};

/// Shorthand for MetricsRegistry::global().
inline MetricsRegistry& metrics() { return MetricsRegistry::global(); }

/// RAII phase scope: adds the enclosed wall time to `registry.timer(name)`.
class PhaseScope {
 public:
  explicit PhaseScope(std::string_view name,
                      MetricsRegistry& registry = MetricsRegistry::global())
      : timer_(&registry.timer(name)),
        start_(std::chrono::steady_clock::now()) {}
  ~PhaseScope() {
    timer_->add_seconds(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count());
  }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  TimerStat* timer_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace wbist::util
