// Seed-driven fuzzing harness: deterministic campaign loops with replayable
// per-case seeds and crash-artifact dumping.
//
// A *campaign* is a named loop over `runs` cases. Case i derives its own
// seed from the campaign seed (case 0 uses the campaign seed verbatim), so
// any failing case can be replayed in isolation with
//     wbist_fuzz <campaign> --seed <case_seed> --runs 1
// The campaign body receives a FuzzCase carrying the case Rng; it stashes
// human-readable artifacts (netlist text, sequences, ...) as it builds the
// test and calls fail() on an oracle mismatch. On failure — including any
// uncaught exception — the harness dumps the stashed artifacts plus an
// info.txt with the replay command to
//     <artifact_dir>/<campaign>/seed-<case_seed>/
// and keeps going until `max_failures` distinct failures were recorded.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.h"

namespace wbist::util {

/// A named blob attached to a fuzz case, written to disk if the case fails.
struct FuzzArtifact {
  std::string name;  ///< file name inside the case's artifact directory
  std::string content;
};

/// Thrown by FuzzCase::fail(); carries the oracle-mismatch description.
class FuzzFailureError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Context handed to a campaign body for one case.
class FuzzCase {
 public:
  explicit FuzzCase(std::uint64_t case_seed)
      : seed_(case_seed), rng_(case_seed) {}

  std::uint64_t seed() const { return seed_; }
  Rng& rng() { return rng_; }

  /// Attach an artifact; later stashes with the same name overwrite.
  void stash(std::string name, std::string content);

  /// Abort the case with an oracle-mismatch message.
  [[noreturn]] void fail(const std::string& message) const {
    throw FuzzFailureError(message);
  }

  std::span<const FuzzArtifact> artifacts() const { return artifacts_; }

 private:
  std::uint64_t seed_;
  Rng rng_;
  std::vector<FuzzArtifact> artifacts_;
};

struct FuzzOptions {
  std::uint64_t seed = 1;    ///< campaign seed (case 0 replays it directly)
  std::size_t runs = 100;    ///< cases to execute
  std::string artifact_dir = "fuzz-artifacts";
  std::size_t max_failures = 1;  ///< stop after this many failing cases
  bool verbose = false;          ///< per-run progress on stderr
};

struct FuzzFailure {
  std::uint64_t case_seed = 0;
  std::size_t run_index = 0;
  std::string message;
  std::string artifact_path;  ///< directory the artifacts were written to
};

struct FuzzReport {
  std::string campaign;
  std::size_t runs_executed = 0;
  std::vector<FuzzFailure> failures;

  bool ok() const { return failures.empty(); }
};

/// Case i's seed: the campaign seed itself for i == 0, otherwise a
/// splitmix64-style mix of seed and index (so neighbouring campaign seeds
/// do not share cases).
std::uint64_t derive_case_seed(std::uint64_t campaign_seed,
                               std::uint64_t run_index);

/// Run `body` for every case of the campaign. Failures (FuzzCase::fail or
/// any exception escaping the body) are recorded in the report and their
/// artifacts dumped; the loop stops early once options.max_failures is
/// reached. Never throws for case failures — only for harness-level errors.
FuzzReport run_campaign(const std::string& campaign, const FuzzOptions& options,
                        const std::function<void(FuzzCase&)>& body);

}  // namespace wbist::util
