// Structured trace spans: a thread-aware tracing layer exported as
// Chrome/Perfetto `trace_event` JSON (open the file directly in
// chrome://tracing or https://ui.perfetto.dev).
//
// The library instrumentation consists of hierarchical RAII spans
// (`TraceSpan`, nestable, with up to four typed key/value args), instant
// events and counters. Events land in **per-thread ring buffers**: each
// thread appends to its own fixed-capacity buffer with no locking, the
// oldest events are overwritten when a buffer fills (drop-oldest, counted —
// a hot path never blocks on tracing), and the exporter folds every buffer
// into one JSON document after the traced run completes.
//
// Design constraints, mirroring util::metrics:
//   1. Observation only. Nothing read back from the trace layer feeds any
//      computation: an instrumented run is bit-identical to an
//      uninstrumented one, with tracing enabled, disabled, or absent.
//   2. Disabled tracing costs ~one branch. Every emission site first checks
//      `trace_enabled()` — a single relaxed atomic load — and does nothing
//      else when tracing is off (the default).
//   3. Enabled tracing never blocks. The per-event cost is two steady_clock
//      reads (span begin/end) plus one fixed-size record write into the
//      calling thread's own buffer. The registry mutex is taken only when a
//      thread traces its first event of a session.
//
// Lifecycle contract: TraceRegistry::start() begins a session (clearing any
// previous one) and stop()/write_json() end it. Sessions must not overlap
// with concurrently *emitting* threads — in practice every caller starts
// tracing before launching work and exports after joining/quiescing it, as
// the CLI and bench drivers do. Span names, arg keys and `const char*` arg
// values must be string literals (or outlive the export); dynamic strings go
// through TraceArg::copy, which truncates into a small inline buffer.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace wbist::util {

namespace trace_internal {
inline std::atomic<bool> g_enabled{false};
}  // namespace trace_internal

/// True while a trace session is recording. One relaxed load: this is the
/// entire hot-path cost of disabled tracing.
inline bool trace_enabled() {
  return trace_internal::g_enabled.load(std::memory_order_relaxed);
}

/// One typed key/value argument attached to a span, instant or counter.
struct TraceArg {
  enum class Kind : std::uint8_t { kNone, kI64, kU64, kF64, kStr, kStrCopy };
  static constexpr std::size_t kCopyCap = 23;  // inline copy, NUL-terminated

  constexpr TraceArg() = default;
  constexpr TraceArg(const char* k, std::int64_t v) : key(k), kind(Kind::kI64) {
    value.i64 = v;
  }
  constexpr TraceArg(const char* k, std::uint64_t v)
      : key(k), kind(Kind::kU64) {
    value.u64 = v;
  }
  constexpr TraceArg(const char* k, std::int32_t v)
      : TraceArg(k, static_cast<std::int64_t>(v)) {}
  constexpr TraceArg(const char* k, std::uint32_t v)
      : TraceArg(k, static_cast<std::uint64_t>(v)) {}
  constexpr TraceArg(const char* k, double v) : key(k), kind(Kind::kF64) {
    value.f64 = v;
  }
  /// `v` must be a string literal (or outlive the export).
  constexpr TraceArg(const char* k, const char* v) : key(k), kind(Kind::kStr) {
    value.str = v;
  }

  /// Copy a dynamic string into the record (truncated to kCopyCap bytes).
  static TraceArg copy(const char* k, std::string_view v) {
    TraceArg a;
    a.key = k;
    a.kind = Kind::kStrCopy;
    const std::size_t n = v.size() < kCopyCap ? v.size() : kCopyCap;
    std::memcpy(a.copy_buf, v.data(), n);
    a.copy_buf[n] = '\0';
    return a;
  }

  const char* key = nullptr;
  Kind kind = Kind::kNone;
  union Value {
    std::int64_t i64;
    std::uint64_t u64;
    double f64;
    const char* str;
  } value{0};
  char copy_buf[kCopyCap + 1] = {};
};

/// One fixed-size trace record (span, instant event or counter sample).
struct TraceEvent {
  static constexpr std::size_t kMaxArgs = 4;
  enum class Type : std::uint8_t { kSpan, kInstant, kCounter };

  const char* name = nullptr;  // string literal
  std::uint64_t ts_ns = 0;     // session-relative start time
  std::uint64_t dur_ns = 0;    // spans only
  Type type = Type::kInstant;
  std::uint8_t n_args = 0;
  TraceArg args[kMaxArgs];
};

/// A single thread's event ring. Only the owning thread writes; the exporter
/// reads after the traced work has quiesced. `head` is the count of events
/// ever pushed — when it exceeds the capacity the oldest records have been
/// overwritten (the difference is the dropped-events count).
class TraceBuffer {
 public:
  TraceBuffer(std::uint32_t tid, std::size_t capacity)
      : tid_(tid), capacity_(capacity), events_(capacity) {}

  void push(const TraceEvent& e) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    events_[static_cast<std::size_t>(h % capacity_)] = e;
    head_.store(h + 1, std::memory_order_release);
  }

  std::uint32_t tid() const { return tid_; }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t pushed() const { return head_.load(std::memory_order_acquire); }
  std::uint64_t dropped() const {
    const std::uint64_t h = pushed();
    return h > capacity_ ? h - capacity_ : 0;
  }
  /// Events currently retained, oldest first.
  std::vector<TraceEvent> snapshot() const;

 private:
  std::uint32_t tid_;
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::atomic<std::uint64_t> head_{0};
};

class TraceRegistry {
 public:
  /// Default per-thread ring capacity (events). ~64Ki records of ~190 bytes
  /// each, i.e. roughly 12 MiB per traced thread at the default.
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

  /// The process-wide registry the library instrumentation writes to.
  static TraceRegistry& global();

  /// Begin a session: drop any previous session's buffers, re-zero the
  /// session clock and set trace_enabled(). `capacity_per_thread` is clamped
  /// to >= 16.
  void start(std::size_t capacity_per_thread = kDefaultCapacity);

  /// Stop recording. Buffers are kept for export until the next start().
  void stop();

  /// Calling thread's buffer for the current session (registered on first
  /// use). Only meaningful while a session is active.
  TraceBuffer& thread_buffer();

  std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0_)
            .count());
  }

  void emit(const TraceEvent& e) { thread_buffer().push(e); }

  /// Sum of dropped events over every thread buffer of the session.
  std::uint64_t dropped_events() const;

  /// Chrome trace_event JSON ("traceEvents" array of "X"/"i"/"C" events plus
  /// thread_name metadata; extra top-level keys: "schema": "wbist.trace/1",
  /// "otherData" with drop counters). Loadable directly in chrome://tracing
  /// and Perfetto.
  std::string to_json() const;
  void write_json(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<TraceBuffer>> buffers_;
  std::size_t capacity_ = kDefaultCapacity;
  std::uint32_t next_tid_ = 0;
  std::atomic<std::uint64_t> session_{0};
  std::chrono::steady_clock::time_point t0_{};
};

/// RAII hierarchical span: records [construction, destruction) as one
/// complete ("ph":"X") event on the calling thread's timeline. Nest freely;
/// spans on the same thread close in LIFO order by construction, which is
/// exactly what the Chrome renderer expects. All constructors are no-ops
/// when tracing is disabled.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (trace_enabled()) begin(name);
  }
  TraceSpan(const char* name, TraceArg a0) {
    if (trace_enabled()) {
      begin(name);
      add(a0);
    }
  }
  TraceSpan(const char* name, TraceArg a0, TraceArg a1) {
    if (trace_enabled()) {
      begin(name);
      add(a0);
      add(a1);
    }
  }
  TraceSpan(const char* name, TraceArg a0, TraceArg a1, TraceArg a2) {
    if (trace_enabled()) {
      begin(name);
      add(a0);
      add(a1);
      add(a2);
    }
  }
  TraceSpan(const char* name, TraceArg a0, TraceArg a1, TraceArg a2,
            TraceArg a3) {
    if (trace_enabled()) {
      begin(name);
      add(a0);
      add(a1);
      add(a2);
      add(a3);
    }
  }
  ~TraceSpan() {
    if (live_) end();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attach an argument whose value is only known at span end (e.g. a
  /// detected-fault count). Ignored when the span is not recording or the
  /// argument slots are exhausted.
  void arg(TraceArg a) {
    if (live_) add(a);
  }

 private:
  void begin(const char* name);
  void end();
  void add(TraceArg a) {
    if (n_args_ < TraceEvent::kMaxArgs) args_[n_args_++] = a;
  }

  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  TraceArg args_[TraceEvent::kMaxArgs];
  std::uint8_t n_args_ = 0;
  bool live_ = false;
};

/// Zero-duration marker on the calling thread's timeline.
void trace_instant(const char* name);
void trace_instant(const char* name, TraceArg a0);
void trace_instant(const char* name, TraceArg a0, TraceArg a1);
void trace_instant(const char* name, TraceArg a0, TraceArg a1, TraceArg a2);

/// Counter-track sample ("ph":"C"): one named series over session time.
void trace_counter(const char* name, double value);

}  // namespace wbist::util
