#include "util/strings.h"

#include <cctype>
#include <cstdio>

namespace wbist::util {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])) != 0)
      ++i;
    std::size_t start = i;
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])) == 0)
      ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

bool starts_with_icase(std::string_view s, std::string_view prefix) {
  if (s.size() < prefix.size()) return false;
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(s[i])) !=
        std::toupper(static_cast<unsigned char>(prefix[i])))
      return false;
  }
  return true;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

}  // namespace wbist::util
