#include "util/metrics.h"

#include <bit>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/json.h"

namespace wbist::util {

void Histogram::record(std::uint64_t v) {
  const std::size_t bucket = static_cast<std::size_t>(std::bit_width(v));
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < v &&
         !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
  }
}

std::array<std::uint64_t, Histogram::kBuckets> Histogram::buckets() const {
  std::array<std::uint64_t, kBuckets> out{};
  for (std::size_t k = 0; k < kBuckets; ++k)
    out[k] = buckets_[k].load(std::memory_order_relaxed);
  return out;
}

double Histogram::quantile(double q) const {
  const auto buckets = this->buckets();
  std::uint64_t total = 0;
  for (const auto b : buckets) total += b;
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the requested quantile in [1, total]; walk the cumulative
  // distribution to the containing bucket, then interpolate linearly across
  // that bucket's value range [2^(k-1), 2^k) (bucket 0 holds only v == 0).
  const double rank = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  double result = 0.0;
  for (std::size_t k = 0; k < buckets.size(); ++k) {
    if (buckets[k] == 0) continue;
    const std::uint64_t next = cum + buckets[k];
    if (static_cast<double>(next) >= rank) {
      if (k == 0) {
        result = 0.0;
      } else {
        const double lo = std::ldexp(1.0, static_cast<int>(k) - 1);
        const double hi = std::ldexp(1.0, static_cast<int>(k));
        const double into =
            (rank - static_cast<double>(cum)) / static_cast<double>(buckets[k]);
        result = lo + into * (hi - lo);
      }
      break;
    }
    cum = next;
    result = std::ldexp(1.0, static_cast<int>(k));  // past bucket k's range
  }
  const double observed_max = static_cast<double>(max());
  return result < observed_max ? result : observed_max;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

void Series::push(double x, double y) {
  std::lock_guard<std::mutex> lk(mu_);
  if (points_.size() >= kMaxPoints) {
    // Decimate by 2 in place: keep the even indices (index 0 — the first
    // point — included) plus the current last point, so the retained curve
    // always spans the full [first, latest] range.
    std::size_t w = 0;
    for (std::size_t r = 0; r < points_.size(); r += 2) points_[w++] = points_[r];
    if ((points_.size() - 1) % 2 != 0) points_[w++] = points_.back();
    points_.resize(w);
  }
  points_.emplace_back(x, y);
}

std::vector<std::pair<double, double>> Series::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return points_;
}

void Series::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  points_.clear();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* instance = new MetricsRegistry;  // never destroyed
  return *instance;
}

namespace {

template <class Map>
auto& find_or_create(Map& map, std::string_view name, std::mutex& mu) {
  std::lock_guard<std::mutex> lk(mu);
  auto it = map.find(name);
  if (it == map.end())
    it = map.emplace(std::string(name),
                     std::make_unique<typename Map::mapped_type::element_type>())
             .first;
  return *it->second;
}

void append_escaped(std::string& out, std::string_view s) {
  append_json_string(out, s);
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  return find_or_create(counters_, name, mu_);
}

TimerStat& MetricsRegistry::timer(std::string_view name) {
  return find_or_create(timers_, name, mu_);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return find_or_create(histograms_, name, mu_);
}

Series& MetricsRegistry::series(std::string_view name) {
  return find_or_create(series_, name, mu_);
}

void MetricsRegistry::set_label(std::string_view name, std::string_view value) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = labels_.find(name);
  if (it == labels_.end())
    labels_.emplace(std::string(name), std::string(value));
  else
    it->second = value;
}

std::map<std::string, std::uint64_t> MetricsRegistry::counter_values() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : counters_) out.emplace(name, c->value());
  return out;
}

std::vector<std::pair<std::string, const Histogram*>>
MetricsRegistry::histogram_entries() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h.get());
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, t] : timers_) t->reset();
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [name, s] : series_) s->reset();
  labels_.clear();
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out = "{\n  \"schema\": \"wbist.metrics/1\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_escaped(out, name);
    out += ": " + std::to_string(c->value());
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"timers\": {";
  first = true;
  for (const auto& [name, t] : timers_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_escaped(out, name);
    out += ": {\"seconds\": ";
    append_double(out, t->seconds());
    out += ", \"count\": " + std::to_string(t->count()) + "}";
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_escaped(out, name);
    out += ": {\"count\": " + std::to_string(h->count()) +
           ", \"sum\": " + std::to_string(h->sum()) +
           ", \"max\": " + std::to_string(h->max()) + ", \"buckets\": {";
    const auto buckets = h->buckets();
    bool bfirst = true;
    for (std::size_t k = 0; k < buckets.size(); ++k) {
      if (buckets[k] == 0) continue;
      if (!bfirst) out += ", ";
      bfirst = false;
      out += "\"" + std::to_string(k) + "\": " + std::to_string(buckets[k]);
    }
    out += "}}";
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"series\": {";
  first = true;
  for (const auto& [name, s] : series_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_escaped(out, name);
    out += ": [";
    const auto points = s->snapshot();
    for (std::size_t k = 0; k < points.size(); ++k) {
      if (k != 0) out += ", ";
      out += "[";
      append_double(out, points[k].first);
      out += ", ";
      append_double(out, points[k].second);
      out += "]";
    }
    out += "]";
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"labels\": {";
  first = true;
  for (const auto& [name, value] : labels_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_escaped(out, name);
    out += ": ";
    append_escaped(out, value);
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

void MetricsRegistry::write_json(const std::string& path) const {
  const std::string json = to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr)
    throw std::runtime_error("metrics: cannot write " + path);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
}

}  // namespace wbist::util
