#include "util/worker_pool.h"

#include <algorithm>

#include "util/trace.h"

namespace wbist::util {

unsigned WorkerPool::resolve(unsigned requested) {
  if (requested != 0) return requested;
  return std::max(1u, std::thread::hardware_concurrency());
}

WorkerPool::WorkerPool(unsigned thread_count) {
  const unsigned extra = thread_count > 1 ? thread_count - 1 : 0;
  threads_.reserve(extra);
  for (unsigned rank = 1; rank <= extra; ++rank)
    threads_.emplace_back([this, rank] { worker_main(rank); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::drain(const std::function<void(std::size_t, unsigned)>& fn,
                       std::size_t n, unsigned rank) {
  TraceSpan span("worker_pool.drain", TraceArg("rank", rank),
                 TraceArg("n", n));
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    try {
      fn(i, rank);
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!error_) error_ = std::current_exception();
    }
  }
}

void WorkerPool::worker_main(unsigned rank) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t, unsigned)>* job = nullptr;
    std::size_t n = 0;
    {
      std::unique_lock<std::mutex> lk(mu_);
      start_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
      n = job_size_;
      if (job == nullptr) continue;  // job already drained and retired
      // Register under mu_ *before* any index claim is possible: while this
      // thread is between the increment and the decrement below it may touch
      // `fn` and the counters, and parallel_for's quiescence wait
      // (active_ == 0) cannot complete during that window.
      ++active_;
    }
    drain(*job, n, rank);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--active_ == 0) done_cv_.notify_all();
    }
  }
}

void WorkerPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, unsigned)>& fn) {
  if (n == 0) return;
  if (threads_.empty()) {
    for (std::size_t i = 0; i < n; ++i) fn(i, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &fn;
    job_size_ = n;
    next_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    ++generation_;
  }
  start_cv_.notify_all();
  drain(fn, n, 0);
  // Our own drain() returning means every index was claimed, and a worker
  // only claims indices while registered in active_. So active_ == 0 proves
  // both that every claimed index finished executing and that no worker can
  // still touch `fn` or the counters — only then is it safe to retire the
  // job (or for the caller to dispatch the next one, which resets next_).
  // Workers that wake later find job_ == nullptr and go back to sleep.
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return active_ == 0; });
  job_ = nullptr;
  job_size_ = 0;
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    lk.unlock();
    std::rethrow_exception(e);
  }
}

}  // namespace wbist::util
