#include "util/fuzz.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace wbist::util {

namespace fs = std::filesystem;

void FuzzCase::stash(std::string name, std::string content) {
  for (FuzzArtifact& a : artifacts_) {
    if (a.name == name) {
      a.content = std::move(content);
      return;
    }
  }
  artifacts_.push_back({std::move(name), std::move(content)});
}

std::uint64_t derive_case_seed(std::uint64_t campaign_seed,
                               std::uint64_t run_index) {
  if (run_index == 0) return campaign_seed;
  std::uint64_t z = campaign_seed + run_index * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

/// Best-effort artifact dump; returns the directory path ("" on failure —
/// a broken disk must not turn a recorded mismatch into a harness crash).
std::string dump_artifacts(const std::string& campaign,
                           const FuzzOptions& options, const FuzzCase& fc,
                           std::size_t run_index, const std::string& message) {
  try {
    const fs::path dir = fs::path(options.artifact_dir) / campaign /
                         ("seed-" + std::to_string(fc.seed()));
    fs::create_directories(dir);
    {
      std::ofstream info(dir / "info.txt");
      info << "campaign:  " << campaign << "\n"
           << "case seed: " << fc.seed() << "\n"
           << "run index: " << run_index << " (campaign seed "
           << options.seed << ")\n"
           << "failure:   " << message << "\n"
           << "replay:    wbist_fuzz " << campaign << " --seed " << fc.seed()
           << " --runs 1\n";
    }
    for (const FuzzArtifact& a : fc.artifacts()) {
      std::ofstream out(dir / a.name);
      out << a.content;
    }
    return dir.string();
  } catch (const std::exception&) {
    return "";
  }
}

}  // namespace

FuzzReport run_campaign(const std::string& campaign, const FuzzOptions& options,
                        const std::function<void(FuzzCase&)>& body) {
  FuzzReport report;
  report.campaign = campaign;

  for (std::size_t i = 0; i < options.runs; ++i) {
    FuzzCase fc(derive_case_seed(options.seed, i));
    if (options.verbose)
      std::fprintf(stderr, "[%s] run %zu/%zu seed=%llu\n", campaign.c_str(),
                   i + 1, options.runs,
                   static_cast<unsigned long long>(fc.seed()));
    std::string failure;
    try {
      body(fc);
    } catch (const FuzzFailureError& e) {
      failure = e.what();
    } catch (const std::exception& e) {
      failure = std::string("unhandled exception: ") + e.what();
    }
    ++report.runs_executed;

    if (!failure.empty()) {
      FuzzFailure f;
      f.case_seed = fc.seed();
      f.run_index = i;
      f.message = failure;
      f.artifact_path = dump_artifacts(campaign, options, fc, i, failure);
      std::fprintf(stderr,
                   "[%s] FAILURE seed=%llu: %s\n"
                   "[%s]   artifacts: %s\n"
                   "[%s]   replay: wbist_fuzz %s --seed %llu --runs 1\n",
                   campaign.c_str(),
                   static_cast<unsigned long long>(f.case_seed),
                   f.message.c_str(), campaign.c_str(),
                   f.artifact_path.empty() ? "(dump failed)"
                                           : f.artifact_path.c_str(),
                   campaign.c_str(), campaign.c_str(),
                   static_cast<unsigned long long>(f.case_seed));
      report.failures.push_back(std::move(f));
      if (report.failures.size() >= options.max_failures) break;
    }
  }
  return report;
}

}  // namespace wbist::util
