// Deterministic pseudo-random number generation for reproducible experiments.
//
// All randomized components of the library (synthetic circuit generation,
// random test-sequence generation, fault sampling) take an explicit Rng so
// that every experiment is reproducible from a single seed.
#pragma once

#include <cstdint>

namespace wbist::util {

/// xoshiro256** by Blackman & Vigna, seeded through splitmix64.
/// Small, fast, and fully deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 to spread a small seed over the full 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit word.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Bernoulli trial: true with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) { return below(den) < num; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// A single uniformly random bit.
  bool next_bit() { return (next_u64() >> 63) != 0; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace wbist::util
