// Sequential transitive-fanout cones of every node of a finalized netlist.
//
// The cone of node n is the set of nodes whose value can ever depend on n's
// value — the closure of the structural fanout relation *through* flip-flops
// (a DFF is a consumer of its D signal, and the DFF's own fanout continues
// the cone one cycle later). A stuck-at fault rooted at n can only ever make
// a faulty machine differ from the good machine inside cone(n); everything
// outside is bit-identical to the fault-free circuit at every cycle. The
// fault simulator uses this to restrict its per-group combinational walk to
// the union of its members' cones (see fault/fault_sim.h).
//
// Cones are represented as fixed-width bitsets over NodeIds (words() 64-bit
// words per node) and computed once per netlist by an iterative fixed-point:
// sweep nodes in reverse evaluation order OR-ing every fanout's cone into
// the node's own until no bit changes. Reverse topological order makes the
// combinational part converge in one sweep; each extra sweep extends the
// closure across one more rank of sequential feedback, so the pass count is
// bounded by the depth of the circuit's flip-flop dependency structure
// (single digits on the ISCAS-89 benchmarks).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.h"

namespace wbist::netlist {

class FanoutCones {
 public:
  /// No eval position: the cone contains no combinational gate.
  static constexpr std::uint32_t kNoGate = 0xffffffffu;

  /// `nl` must be finalized and outlive nothing here — all data is copied.
  explicit FanoutCones(const Netlist& nl);

  /// 64-bit words per cone bitset (= ceil(node_count / 64)).
  std::size_t words() const { return words_; }

  std::size_t node_count() const { return n_; }

  /// Bitset of cone(node), node itself included; bit k = NodeId k.
  std::span<const std::uint64_t> cone(NodeId node) const {
    return {bits_.data() + static_cast<std::size_t>(node) * words_, words_};
  }

  bool contains(NodeId node, NodeId member) const {
    return (cone(node)[member / 64] >> (member % 64)) & 1;
  }

  /// Number of nodes in cone(node).
  std::uint32_t popcount(NodeId node) const { return pop_[node]; }

  /// Evaluation-order position (index into Netlist::eval_order()) of the
  /// earliest combinational gate in cone(node), or kNoGate when the cone
  /// holds no gate. This is the locality key the fault simulator packs
  /// groups by: faults whose cones start at nearby gates overlap heavily.
  std::uint32_t first_gate_pos(NodeId node) const { return first_gate_[node]; }

  /// Fixed-point sweeps the construction took (exposed for tests/metrics).
  std::size_t passes() const { return passes_; }

 private:
  std::size_t n_ = 0;
  std::size_t words_ = 0;
  std::size_t passes_ = 0;
  std::vector<std::uint64_t> bits_;  // n_ x words_, row per node
  std::vector<std::uint32_t> pop_;
  std::vector<std::uint32_t> first_gate_;
};

}  // namespace wbist::netlist
