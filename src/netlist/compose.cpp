#include "netlist/compose.h"

#include <stdexcept>
#include <unordered_map>

namespace wbist::netlist {

std::vector<NodeId> append_netlist(Netlist& dest, const Netlist& src,
                                   const std::string& prefix,
                                   std::span<const PortBinding> bindings) {
  if (dest.finalized())
    throw std::invalid_argument("compose: destination is finalized");
  if (!src.finalized())
    throw std::invalid_argument("compose: source must be finalized");

  std::unordered_map<std::string, NodeId> bound;
  for (const PortBinding& b : bindings) {
    if (src.find(b.inner) == kNoNode ||
        src.node(src.find(b.inner)).type != GateType::kInput)
      throw std::invalid_argument("compose: '" + b.inner +
                                  "' is not a primary input of the source");
    if (!bound.emplace(b.inner, b.outer).second)
      throw std::invalid_argument("compose: duplicate binding for '" +
                                  b.inner + "'");
  }

  std::vector<NodeId> map(src.node_count(), kNoNode);

  // Pass 1: create nodes (inputs resolve to their bound outer nodes; DFFs
  // are created unconnected; gates need their fanins, so they wait).
  for (NodeId id = 0; id < src.node_count(); ++id) {
    const Node& n = src.node(id);
    if (n.type == GateType::kInput) {
      const auto it = bound.find(n.name);
      if (it == bound.end())
        throw std::invalid_argument("compose: unbound source input '" +
                                    n.name + "'");
      map[id] = it->second;
    } else if (n.type == GateType::kDff) {
      map[id] = dest.add_dff(prefix + n.name);
    }
  }
  // Pass 2: gates, in the source's dependency order (eval_order covers all
  // logic gates with fanins created before use — sources are done, and any
  // gate's gate-fanins precede it in the order).
  for (NodeId id : src.eval_order()) {
    const Node& n = src.node(id);
    std::vector<NodeId> fanin;
    fanin.reserve(n.fanin.size());
    for (NodeId f : n.fanin) {
      if (map[f] == kNoNode)
        throw std::logic_error("compose: fanin not yet mapped");
      fanin.push_back(map[f]);
    }
    map[id] = dest.add_gate(n.type, prefix + n.name, std::move(fanin));
  }
  // Pass 3: connect DFF D-inputs.
  for (NodeId id : src.flip_flops())
    dest.connect_dff(map[id], map[src.node(id).fanin[0]]);

  return map;
}

}  // namespace wbist::netlist
