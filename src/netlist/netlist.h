// Gate-level model of a synchronous sequential circuit.
//
// A circuit is a set of *nodes*; every node defines exactly one signal:
//   - PrimaryInput nodes (no fanin),
//   - Dff nodes (one fanin: the D / next-state signal; the node's own value
//     is the flip-flop output, i.e. the present state), and
//   - combinational gates (And/Nand/Or/Nor/Not/Buf/Xor/Xnor).
// Primary outputs are observation markers on nodes, not separate nodes.
// This matches the ISCAS-89 `.bench` view of a circuit.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace wbist::netlist {

/// Index of a node inside its Netlist.
using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

enum class GateType : std::uint8_t {
  kInput,  ///< primary input
  kDff,    ///< D flip-flop; fanin[0] is the next-state signal
  kBuf,
  kNot,
  kAnd,
  kNand,
  kOr,
  kNor,
  kXor,
  kXnor,
};

/// Human-readable name ("AND", "DFF", ...) as used in `.bench` files.
std::string_view gate_type_name(GateType type);

/// True for the eight combinational gate types.
bool is_logic_gate(GateType type);

struct Node {
  GateType type = GateType::kInput;
  std::string name;
  std::vector<NodeId> fanin;
  std::vector<NodeId> fanout;  ///< filled by Netlist::finalize()
  bool is_primary_output = false;
};

/// Structural statistics, used by reports and the synthetic generator.
struct NetlistStats {
  std::size_t primary_inputs = 0;
  std::size_t primary_outputs = 0;
  std::size_t flip_flops = 0;
  std::size_t logic_gates = 0;
  std::size_t lines = 0;        ///< stems + fanout branches (fault sites)
  std::size_t max_level = 0;    ///< combinational depth
};

/// A synchronous sequential circuit under construction or in use.
///
/// Build with add_input/add_dff/add_gate/connect_dff/mark_output, then call
/// finalize() exactly once. finalize() validates the structure (every fanin
/// connected, no combinational cycles, sensible arities) and computes fanout
/// lists plus a topological evaluation order for the combinational core.
/// All simulators require a finalized netlist.
class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // -- construction ---------------------------------------------------------

  /// Add a primary input node. Throws std::invalid_argument on duplicate name.
  NodeId add_input(std::string name);

  /// Add a flip-flop whose D input will be connected later (connect_dff) or
  /// immediately (pass d != kNoNode).
  NodeId add_dff(std::string name, NodeId d = kNoNode);

  /// Add a combinational gate. Throws on duplicate name or bad arity.
  NodeId add_gate(GateType type, std::string name, std::vector<NodeId> fanin);

  /// Connect the D input of a flip-flop created without one.
  void connect_dff(NodeId dff, NodeId d);

  /// Mark a node as a primary output (idempotent).
  void mark_output(NodeId id);

  /// Validate and freeze the structure. Throws std::runtime_error on
  /// dangling fanin, combinational cycles, or unnamed/duplicate signals.
  void finalize();

  bool finalized() const { return finalized_; }

  /// A structural copy with the same nodes and NodeIds but *not* finalized,
  /// so test hardware (MISRs, observation-point outputs) can be appended
  /// before re-finalizing. Fault lists built against this netlist remain
  /// valid for the copy because ids are preserved.
  Netlist unfrozen_copy() const;

  // -- access ---------------------------------------------------------------

  std::size_t node_count() const { return nodes_.size(); }
  const Node& node(NodeId id) const { return nodes_[id]; }

  std::span<const NodeId> primary_inputs() const { return inputs_; }
  std::span<const NodeId> primary_outputs() const { return outputs_; }
  std::span<const NodeId> flip_flops() const { return dffs_; }

  /// Combinational gates in topological (fanin-before-fanout) order.
  /// Primary inputs and flip-flop outputs are the sources and are excluded.
  std::span<const NodeId> eval_order() const { return order_; }

  /// Logic level of each node (sources at 0); indexed by NodeId.
  std::span<const std::uint32_t> levels() const { return levels_; }

  /// Lookup by signal name; returns kNoNode if absent.
  NodeId find(std::string_view name) const;

  NetlistStats stats() const;

 private:
  NodeId add_node(Node node);
  void check_finalized(bool expected) const;

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;
  std::vector<NodeId> dffs_;
  std::vector<NodeId> order_;
  std::vector<std::uint32_t> levels_;
  std::unordered_map<std::string, NodeId> by_name_;
  bool finalized_ = false;
};

}  // namespace wbist::netlist
