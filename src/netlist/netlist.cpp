#include "netlist/netlist.h"

#include <algorithm>
#include <stdexcept>

namespace wbist::netlist {

std::string_view gate_type_name(GateType type) {
  switch (type) {
    case GateType::kInput: return "INPUT";
    case GateType::kDff: return "DFF";
    case GateType::kBuf: return "BUF";
    case GateType::kNot: return "NOT";
    case GateType::kAnd: return "AND";
    case GateType::kNand: return "NAND";
    case GateType::kOr: return "OR";
    case GateType::kNor: return "NOR";
    case GateType::kXor: return "XOR";
    case GateType::kXnor: return "XNOR";
  }
  return "?";
}

bool is_logic_gate(GateType type) {
  return type != GateType::kInput && type != GateType::kDff;
}

NodeId Netlist::add_node(Node node) {
  check_finalized(false);
  if (node.name.empty())
    throw std::invalid_argument("netlist: node must have a name");
  const auto [it, inserted] =
      by_name_.emplace(node.name, static_cast<NodeId>(nodes_.size()));
  if (!inserted)
    throw std::invalid_argument("netlist: duplicate signal name '" +
                                node.name + "'");
  nodes_.push_back(std::move(node));
  return it->second;
}

NodeId Netlist::add_input(std::string name) {
  Node n;
  n.type = GateType::kInput;
  n.name = std::move(name);
  const NodeId id = add_node(std::move(n));
  inputs_.push_back(id);
  return id;
}

NodeId Netlist::add_dff(std::string name, NodeId d) {
  Node n;
  n.type = GateType::kDff;
  n.name = std::move(name);
  if (d != kNoNode) n.fanin.push_back(d);
  const NodeId id = add_node(std::move(n));
  dffs_.push_back(id);
  return id;
}

NodeId Netlist::add_gate(GateType type, std::string name,
                         std::vector<NodeId> fanin) {
  if (!is_logic_gate(type))
    throw std::invalid_argument("netlist: add_gate requires a logic type");
  const bool unary = type == GateType::kBuf || type == GateType::kNot;
  if (unary ? fanin.size() != 1 : fanin.empty())
    throw std::invalid_argument("netlist: bad fanin arity for gate '" + name +
                                "'");
  Node n;
  n.type = type;
  n.name = std::move(name);
  n.fanin = std::move(fanin);
  return add_node(std::move(n));
}

void Netlist::connect_dff(NodeId dff, NodeId d) {
  check_finalized(false);
  Node& n = nodes_.at(dff);
  if (n.type != GateType::kDff)
    throw std::invalid_argument("netlist: connect_dff on non-DFF node");
  if (!n.fanin.empty())
    throw std::invalid_argument("netlist: DFF '" + n.name +
                                "' already connected");
  n.fanin.push_back(d);
}

void Netlist::mark_output(NodeId id) {
  check_finalized(false);
  Node& n = nodes_.at(id);
  if (n.is_primary_output) return;
  n.is_primary_output = true;
  // Declaration order is the circuit's output order (as in `.bench` files);
  // it must survive write/read round trips.
  outputs_.push_back(id);
}

void Netlist::finalize() {
  check_finalized(false);

  // Every fanin must reference an existing node, and every DFF must have a
  // D input.
  for (const Node& n : nodes_) {
    if (n.type == GateType::kDff && n.fanin.size() != 1)
      throw std::runtime_error("netlist: DFF '" + n.name + "' has no D input");
    for (NodeId f : n.fanin)
      if (f >= nodes_.size())
        throw std::runtime_error("netlist: dangling fanin on '" + n.name +
                                 "'");
  }

  // Fanout lists.
  for (Node& n : nodes_) n.fanout.clear();
  for (NodeId id = 0; id < nodes_.size(); ++id)
    for (NodeId f : nodes_[id].fanin) nodes_[f].fanout.push_back(id);

  // Kahn topological sort of the combinational core. Sources (PIs and DFF
  // outputs) start at level 0; DFF *inputs* are sinks, so edges into a DFF
  // node are not followed (they cross a clock boundary).
  levels_.assign(nodes_.size(), 0);
  std::vector<std::uint32_t> pending(nodes_.size(), 0);
  std::vector<NodeId> ready;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (is_logic_gate(n.type))
      pending[id] = static_cast<std::uint32_t>(n.fanin.size());
    else
      ready.push_back(id);  // PI or DFF output: a sequential source
  }

  order_.clear();
  std::size_t head = 0;
  while (head < ready.size()) {
    const NodeId id = ready[head++];
    for (NodeId out : nodes_[id].fanout) {
      if (!is_logic_gate(nodes_[out].type)) continue;  // DFF D pin: sink
      levels_[out] = std::max(levels_[out], levels_[id] + 1);
      if (--pending[out] == 0) {
        ready.push_back(out);
        order_.push_back(out);
      }
    }
  }

  for (NodeId id = 0; id < nodes_.size(); ++id)
    if (is_logic_gate(nodes_[id].type) && pending[id] != 0)
      throw std::runtime_error(
          "netlist: combinational cycle through '" + nodes_[id].name + "'");

  if (outputs_.empty())
    throw std::runtime_error("netlist: circuit has no primary outputs");

  finalized_ = true;
}

Netlist Netlist::unfrozen_copy() const {
  Netlist copy;
  copy.name_ = name_;
  copy.nodes_ = nodes_;
  for (Node& n : copy.nodes_) n.fanout.clear();  // recomputed by finalize()
  copy.inputs_ = inputs_;
  copy.outputs_ = outputs_;
  copy.dffs_ = dffs_;
  copy.by_name_ = by_name_;
  copy.finalized_ = false;
  return copy;
}

NodeId Netlist::find(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? kNoNode : it->second;
}

NetlistStats Netlist::stats() const {
  check_finalized(true);
  NetlistStats s;
  s.primary_inputs = inputs_.size();
  s.primary_outputs = outputs_.size();
  s.flip_flops = dffs_.size();
  s.logic_gates = order_.size();
  for (const Node& n : nodes_) {
    s.lines += 1;  // stem
    if (n.fanout.size() > 1) s.lines += n.fanout.size();  // branches
  }
  for (std::uint32_t lvl : levels_)
    s.max_level = std::max<std::size_t>(s.max_level, lvl);
  return s;
}

void Netlist::check_finalized(bool expected) const {
  if (finalized_ != expected)
    throw std::logic_error(expected
                               ? "netlist: operation requires finalize()"
                               : "netlist: structure is frozen by finalize()");
}

}  // namespace wbist::netlist
