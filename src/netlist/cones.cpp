#include "netlist/cones.h"

#include <bit>
#include <stdexcept>

namespace wbist::netlist {

FanoutCones::FanoutCones(const Netlist& nl) {
  if (!nl.finalized())
    throw std::invalid_argument("cones: netlist not finalized");
  n_ = nl.node_count();
  words_ = (n_ + 63) / 64;
  bits_.assign(n_ * words_, 0);
  for (NodeId id = 0; id < n_; ++id)
    bits_[id * words_ + id / 64] |= std::uint64_t{1} << (id % 64);

  // Sweep order: combinational gates consumer-first (reverse eval order),
  // then flip-flops, then primary inputs. Within one sweep every gate pulls
  // the already-complete cones of its combinational consumers, so only the
  // feedback through flip-flops needs further sweeps.
  std::vector<NodeId> sweep;
  sweep.reserve(n_);
  const auto order = nl.eval_order();
  sweep.insert(sweep.end(), order.rbegin(), order.rend());
  sweep.insert(sweep.end(), nl.flip_flops().begin(), nl.flip_flops().end());
  sweep.insert(sweep.end(), nl.primary_inputs().begin(),
               nl.primary_inputs().end());

  bool changed = true;
  while (changed) {
    changed = false;
    ++passes_;
    for (const NodeId id : sweep) {
      std::uint64_t* dst = bits_.data() + static_cast<std::size_t>(id) * words_;
      for (const NodeId c : nl.node(id).fanout) {
        const std::uint64_t* src =
            bits_.data() + static_cast<std::size_t>(c) * words_;
        for (std::size_t w = 0; w < words_; ++w) {
          const std::uint64_t merged = dst[w] | src[w];
          if (merged != dst[w]) {
            dst[w] = merged;
            changed = true;
          }
        }
      }
    }
  }

  // Locality keys: eval position of each gate, then per cone the earliest
  // gate position and the member count.
  std::vector<std::uint32_t> eval_pos(n_, kNoGate);
  for (std::uint32_t i = 0; i < order.size(); ++i) eval_pos[order[i]] = i;
  pop_.assign(n_, 0);
  first_gate_.assign(n_, kNoGate);
  for (NodeId id = 0; id < n_; ++id) {
    const std::uint64_t* row =
        bits_.data() + static_cast<std::size_t>(id) * words_;
    std::uint32_t count = 0;
    std::uint32_t first = kNoGate;
    for (std::size_t w = 0; w < words_; ++w) {
      std::uint64_t bitsw = row[w];
      count += static_cast<std::uint32_t>(std::popcount(bitsw));
      while (bitsw != 0) {
        const NodeId member = static_cast<NodeId>(
            w * 64 + static_cast<std::size_t>(std::countr_zero(bitsw)));
        bitsw &= bitsw - 1;
        if (eval_pos[member] < first) first = eval_pos[member];
      }
    }
    pop_[id] = count;
    first_gate_[id] = first;
  }
}

}  // namespace wbist::netlist
