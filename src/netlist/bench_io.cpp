#include "netlist/bench_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "util/strings.h"

namespace wbist::netlist {

namespace {

using util::split;
using util::to_upper;
using util::trim;

[[noreturn]] void fail(std::size_t line_no, const std::string& msg) {
  throw std::runtime_error("bench: line " + std::to_string(line_no) + ": " +
                           msg);
}

GateType parse_type(std::string_view token, std::size_t line_no) {
  const std::string t = to_upper(token);
  if (t == "DFF" || t == "FF") return GateType::kDff;
  if (t == "BUF" || t == "BUFF") return GateType::kBuf;
  if (t == "NOT" || t == "INV") return GateType::kNot;
  if (t == "AND") return GateType::kAnd;
  if (t == "NAND") return GateType::kNand;
  if (t == "OR") return GateType::kOr;
  if (t == "NOR") return GateType::kNor;
  if (t == "XOR") return GateType::kXor;
  if (t == "XNOR") return GateType::kXnor;
  fail(line_no, "unknown gate type '" + std::string(token) + "'");
}

struct PendingDef {
  std::string name;
  GateType type;
  std::vector<std::string> fanin;
  std::size_t line_no;
};

}  // namespace

Netlist read_bench(std::string_view text, std::string circuit_name) {
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::vector<PendingDef> defs;
  // Every signal has exactly one definition (an INPUT declaration or an
  // assignment); OUTPUT declarations must also be unique. Tracked here so
  // duplicates are rejected with the offending line, not deep inside the
  // netlist builder.
  std::unordered_map<std::string, std::size_t> defined_at;
  std::unordered_map<std::string, std::size_t> output_at;
  const auto define = [&](const std::string& name, std::size_t line) {
    const auto [it, inserted] = defined_at.emplace(name, line);
    if (!inserted)
      fail(line, "duplicate definition of '" + name + "' (first defined at line " +
                     std::to_string(it->second) + ")");
  };

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view raw =
        text.substr(pos, nl == std::string_view::npos ? text.size() - pos
                                                      : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;

    std::string_view line = trim(raw);
    if (const std::size_t hash = line.find('#'); hash != std::string_view::npos)
      line = trim(line.substr(0, hash));
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      // INPUT(x) or OUTPUT(x)
      const std::size_t open = line.find('(');
      const std::size_t close = line.rfind(')');
      if (open == std::string_view::npos || close == std::string_view::npos ||
          close <= open)
        fail(line_no, "expected INPUT(...), OUTPUT(...) or an assignment");
      const std::string kw = to_upper(trim(line.substr(0, open)));
      const std::string sig{trim(line.substr(open + 1, close - open - 1))};
      if (sig.empty()) fail(line_no, "empty signal name");
      if (kw == "INPUT") {
        define(sig, line_no);
        input_names.push_back(sig);
      } else if (kw == "OUTPUT") {
        const auto [it, inserted] = output_at.emplace(sig, line_no);
        if (!inserted)
          fail(line_no, "duplicate OUTPUT declaration of '" + sig +
                            "' (first declared at line " +
                            std::to_string(it->second) + ")");
        output_names.push_back(sig);
      } else {
        fail(line_no, "unknown directive '" + kw + "'");
      }
      continue;
    }

    PendingDef def;
    def.name = std::string(trim(line.substr(0, eq)));
    def.line_no = line_no;
    std::string_view rhs = trim(line.substr(eq + 1));
    const std::size_t open = rhs.find('(');
    const std::size_t close = rhs.rfind(')');
    if (def.name.empty() || open == std::string_view::npos ||
        close == std::string_view::npos || close <= open)
      fail(line_no, "malformed assignment");
    def.type = parse_type(trim(rhs.substr(0, open)), line_no);
    for (std::string_view arg : split(rhs.substr(open + 1, close - open - 1), ',')) {
      const std::string_view a = trim(arg);
      if (a.empty()) fail(line_no, "empty fanin name");
      def.fanin.emplace_back(a);
    }
    if (def.fanin.empty()) fail(line_no, "gate with no fanin");
    define(def.name, line_no);
    // A combinational gate feeding itself is a length-1 cycle; report it
    // directly instead of letting it surface as a generic no-progress error.
    // (DFF self-loops are legal: the edge crosses a clock boundary.)
    if (def.type != GateType::kDff)
      for (const std::string& f : def.fanin)
        if (f == def.name)
          fail(line_no, "self-loop: '" + def.name + "' is its own fanin");
    defs.push_back(std::move(def));
  }

  Netlist nl(std::move(circuit_name));
  // Create all nodes first so fanins can reference later definitions.
  for (const std::string& name : input_names) nl.add_input(name);
  for (const PendingDef& def : defs) {
    if (def.type == GateType::kDff) {
      if (def.fanin.size() != 1)
        fail(def.line_no, "DFF must have exactly one input");
      nl.add_dff(def.name);
    }
  }
  // Gates need their fanin ids at creation; build a name table incrementally
  // is not enough (forward refs), so create placeholder-free: gates are added
  // in a dependency-agnostic way by resolving names after all signal names
  // exist. Gate nodes themselves must exist to be referenced, so allocate
  // them via a two-step: first declare as BUF with empty fanin is not allowed
  // by the model; instead resolve using the fact that only names matter.
  //
  // Strategy: add gate nodes in file order, but resolve each fanin name to a
  // NodeId lazily — names that are not yet present must belong to gates
  // defined later, so pre-register all gate names by creating the nodes in
  // two passes over `defs`: pass 1 adds DFFs (done above); pass 2 adds gates
  // whose fanins are all resolvable, looping until done.
  std::vector<const PendingDef*> remaining;
  for (const PendingDef& def : defs)
    if (def.type != GateType::kDff) remaining.push_back(&def);

  while (!remaining.empty()) {
    std::vector<const PendingDef*> next;
    bool progress = false;
    for (const PendingDef* def : remaining) {
      std::vector<NodeId> fanin;
      fanin.reserve(def->fanin.size());
      bool ok = true;
      for (const std::string& f : def->fanin) {
        const NodeId id = nl.find(f);
        if (id == kNoNode) {
          ok = false;
          break;
        }
        fanin.push_back(id);
      }
      if (!ok) {
        next.push_back(def);
        continue;
      }
      nl.add_gate(def->type, def->name, std::move(fanin));
      progress = true;
    }
    if (!progress) {
      // Every signal name was registered up front, so a fanin missing from
      // `defined_at` can never resolve: that is an undefined signal. If all
      // fanins are defined somewhere, the stall is a genuine combinational
      // cycle among the remaining definitions.
      for (const PendingDef* def : next)
        for (const std::string& f : def->fanin)
          if (defined_at.find(f) == defined_at.end())
            fail(def->line_no, "undefined signal '" + f +
                                   "' in definition of '" + def->name + "'");
      std::string members;
      for (std::size_t k = 0; k < next.size() && k < 5; ++k) {
        if (k != 0) members += "', '";
        members += next[k]->name;
      }
      if (next.size() > 5) members += "', ...";
      fail(next.front()->line_no,
           "combinational cycle involving '" + members + "'");
    }
    remaining = std::move(next);
  }

  for (const PendingDef& def : defs) {
    if (def.type != GateType::kDff) continue;
    const NodeId d = nl.find(def.fanin[0]);
    if (d == kNoNode)
      fail(def.line_no, "undefined signal '" + def.fanin[0] +
                            "' in definition of '" + def.name + "'");
    nl.connect_dff(nl.find(def.name), d);
  }

  for (const std::string& name : output_names) {
    const NodeId id = nl.find(name);
    if (id == kNoNode)
      throw std::runtime_error("bench: OUTPUT references undefined signal '" +
                               name + "'");
    nl.mark_output(id);
  }

  nl.finalize();
  return nl;
}

Netlist read_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("bench: cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string name = path;
  if (const std::size_t slash = name.find_last_of('/');
      slash != std::string::npos)
    name = name.substr(slash + 1);
  if (const std::size_t dot = name.find_last_of('.'); dot != std::string::npos)
    name = name.substr(0, dot);
  return read_bench(ss.str(), name);
}

std::string write_bench(const Netlist& nl) {
  std::ostringstream out;
  out << "# " << (nl.name().empty() ? "circuit" : nl.name()) << "\n";
  for (NodeId id : nl.primary_inputs())
    out << "INPUT(" << nl.node(id).name << ")\n";
  for (NodeId id : nl.primary_outputs())
    out << "OUTPUT(" << nl.node(id).name << ")\n";
  out << "\n";
  for (NodeId id : nl.flip_flops()) {
    const Node& n = nl.node(id);
    out << n.name << " = DFF(" << nl.node(n.fanin[0]).name << ")\n";
  }
  for (NodeId id : nl.eval_order()) {
    const Node& n = nl.node(id);
    out << n.name << " = " << gate_type_name(n.type) << "(";
    for (std::size_t i = 0; i < n.fanin.size(); ++i) {
      if (i != 0) out << ", ";
      out << nl.node(n.fanin[i]).name;
    }
    out << ")\n";
  }
  return out.str();
}

void write_bench_file(const Netlist& nl, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("bench: cannot write '" + path + "'");
  out << write_bench(nl);
  if (!out) throw std::runtime_error("bench: write failed for '" + path + "'");
}

}  // namespace wbist::netlist
