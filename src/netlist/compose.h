// Netlist composition: instantiate one netlist inside another.
//
// append_netlist copies every node of `src` into `dest` under a name
// prefix. Primary inputs of `src` are *not* copied as inputs: each must be
// bound to an existing `dest` node (port binding), which is how a BIST
// generator's TG outputs drive a CUT's former primary inputs, and how a
// MISR consumes a CUT's outputs. Output markers of `src` are not copied
// either — the caller decides what the composed circuit observes.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace wbist::netlist {

struct PortBinding {
  std::string inner;  ///< primary-input name inside `src`
  NodeId outer;       ///< node in `dest` that drives it
};

/// Copy `src` into `dest` (which must not be finalized). Every `src`
/// primary input must appear in `bindings` exactly once. Returns the node
/// map: result[src_id] == corresponding dest id (bound inputs map to their
/// outer driver). Throws std::invalid_argument on missing/unknown bindings
/// or name collisions that the prefix does not resolve.
std::vector<NodeId> append_netlist(Netlist& dest, const Netlist& src,
                                   const std::string& prefix,
                                   std::span<const PortBinding> bindings);

}  // namespace wbist::netlist
