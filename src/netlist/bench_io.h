// Reader and writer for the ISCAS-89 `.bench` netlist format.
//
// The format:
//   # comment
//   INPUT(G0)
//   OUTPUT(G17)
//   G5 = DFF(G10)
//   G11 = NOR(G5, G9)
//
// Signals may be referenced before they are defined; the reader resolves
// names in a second pass. The writer emits a canonical file that the reader
// round-trips exactly (same nodes, same order classes).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "netlist/netlist.h"

namespace wbist::netlist {

/// Parse `.bench` text. Throws std::runtime_error with a line number on
/// malformed input. The returned netlist is finalized.
Netlist read_bench(std::string_view text, std::string circuit_name = "");

/// Parse a `.bench` file from disk.
Netlist read_bench_file(const std::string& path);

/// Serialize a finalized netlist to `.bench` text.
std::string write_bench(const Netlist& nl);

/// Write `.bench` text to a file; throws std::runtime_error on I/O failure.
void write_bench_file(const Netlist& nl, const std::string& path);

}  // namespace wbist::netlist
