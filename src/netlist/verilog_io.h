// Structural Verilog export.
//
// Emits a synthesizable Verilog-2001 module for a finalized netlist: one
// `assign` per combinational gate, one clocked always-block for the
// flip-flops, and an added `clk` port (the .bench model leaves the clock
// implicit). Identifiers are escaped when they are not valid Verilog names.
// This is the bridge from the library's generator/self-test netlists to a
// standard synthesis flow.
#pragma once

#include <string>

#include "netlist/netlist.h"

namespace wbist::netlist {

/// Serialize `nl` as a Verilog module named after the circuit ("top" if the
/// netlist has no name).
std::string write_verilog(const Netlist& nl);

/// Write to a file; throws std::runtime_error on I/O failure.
void write_verilog_file(const Netlist& nl, const std::string& path);

}  // namespace wbist::netlist
