// wbist — command-line front end for the weighted-BIST library.
//
//   wbist list                          registry circuits
//   wbist info <circuit>                structure + fault counts
//   wbist emit <circuit> [out.bench]    write the netlist
//   wbist tgen <circuit> [out.seq]      deterministic sequence + compaction
//   wbist flow <circuit>                full method, Table-6 style row
//   wbist fsim <circuit> <seq-file>     fault-simulate a sequence file
//   wbist synth <circuit> [out.bench]   flow + Figure-1 generator emission
//   wbist obs <circuit>                 observation-point tradeoff table
//   wbist serve --socket <path>|--tcp <port>   persistent daemon
//   wbist submit --socket <path>|--tcp <port> <job> [args]   daemon client
//   wbist stats --socket <path>|--tcp <port>   daemon stats snapshot
//                                       (JSON; --prom renders Prometheus
//                                       text exposition; --flight dumps the
//                                       flight recorder)
//   wbist top <status.json>             refreshing campaign progress view
//   wbist campaign <circuit> [seq]      sharded multi-process fault-sim
//                                       campaign with checkpoint/resume
//   wbist campaign-worker               internal: one campaign worker
//                                       process (frames on stdin/stdout)
//
// Every subcommand accepts these position-independent options (both
// `--flag path` and `--flag=path` forms, anywhere on the line):
//   --metrics-json <path>     dump the util::metrics registry (per-phase wall
//                             times, kernel/trace cycle counts, series) as JSON
//   --trace-json <path>       record a Chrome/Perfetto trace of the run
//                             (util::trace spans; load at ui.perfetto.dev)
//   --provenance-jsonl <path> stream per-fault detection provenance records
//   --vcd <path>              (tgen only) good-machine waveform of the final
//                             sequence
// All four artifact paths resolve against WBIST_OUT_DIR (util::out_path),
// and all four are observation-only: the command's results are
// bit-identical with and without them.
//
// Circuits may also be arbitrary `.bench` files: any argument containing
// '/' or ending in ".bench" is loaded from disk instead of the registry.
//
// The one-shot subcommands and the daemon share the same re-entrant
// library calls (core/service.h) over immutable compiled circuits
// (core/artifact_cache.h), so daemon results are bit-identical to CLI
// results — the CLI only appends its wall-clock suffixes.
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "circuits/registry.h"
#include "core/artifact_cache.h"
#include "core/campaign.h"
#include "core/flow.h"
#include "core/generator_hw.h"
#include "core/obs_points.h"
#include "core/service.h"
#include "fault/fault_list.h"
#include "fault/fault_sim.h"
#include "netlist/bench_io.h"
#include "serve/campaign_runner.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "sim/good_sim.h"
#include "sim/kernel.h"
#include "sim/sequence_io.h"
#include "sim/vcd.h"
#include "tgen/compaction.h"
#include "tgen/random_tgen.h"
#include "util/cli_opts.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/out_dir.h"
#include "util/provenance.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/timer.h"
#include "util/trace.h"

namespace {

using namespace wbist;

/// Optional --vcd destination for `tgen`, stripped in main() like the other
/// position-independent options (already WBIST_OUT_DIR-resolved).
std::string g_vcd_path;

/// Optional --result-json destination for `fsim` and `campaign`: the
/// canonical per-fault detection document (core::render_fault_sim_result_json)
/// CI diffs byte for byte between the two paths. Stripped in main(),
/// WBIST_OUT_DIR-resolved.
std::string g_result_json_path;

/// --metrics-json / --trace-json destinations, stripped in main(). Globals
/// (not main() locals) because `submit --observe` redirects them: when the
/// daemon answered with a wbist.obs/1 block, the *server-side* observation
/// is written to these paths instead of the client's own (empty) registry,
/// and the paths are cleared so main()'s epilogue does not overwrite them.
std::string g_metrics_path;
std::string g_trace_path;

/// argv[0], the fallback when /proc/self/exe is unavailable (campaign
/// workers are spawned from this binary).
const char* g_argv0 = "wbist";

bool is_bench_path(const std::string& name) {
  return name.find('/') != std::string::npos ||
         (name.size() > 6 && name.substr(name.size() - 6) == ".bench");
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// The path stem, matching netlist::read_bench_file's circuit naming, so a
/// circuit loaded by path keeps the same name whether it is compiled here
/// or inlined into a daemon request.
std::string path_stem(const std::string& path) {
  std::string name = path;
  if (const std::size_t slash = name.find_last_of('/');
      slash != std::string::npos)
    name = name.substr(slash + 1);
  if (const std::size_t dot = name.find_last_of('.'); dot != std::string::npos)
    name = name.substr(0, dot);
  return name;
}

core::CircuitSpec spec_for(const std::string& name) {
  core::CircuitSpec spec;
  if (is_bench_path(name)) {
    spec.bench_text = read_file(name);
    spec.display_name = path_stem(name);
  } else {
    spec.registry_name = name;
  }
  return spec;
}

std::shared_ptr<const core::CompiledCircuit> compile_circuit(
    const std::string& name) {
  return core::CompiledCircuit::compile(spec_for(name));
}

netlist::Netlist load_circuit(const std::string& name) {
  if (is_bench_path(name)) return netlist::read_bench_file(name);
  return circuits::circuit_by_name(name);
}

int cmd_list() {
  util::Table t;
  t.header({"circuit", "PIs", "POs", "FFs", "gates", "kind"});
  for (const auto& info : circuits::known_circuits())
    t.row({info.name, std::to_string(info.profile.n_pi),
           std::to_string(info.profile.n_po),
           std::to_string(info.profile.n_ff),
           std::to_string(info.profile.n_gates),
           info.fetched      ? "real ISCAS-89 (fetched)"
           : info.synthetic ? "synthetic analog"
                            : "real ISCAS-89"});
  std::fputs(t.render().c_str(), stdout);
  return 0;
}

int cmd_info(const std::string& name) {
  const auto cc = compile_circuit(name);
  std::fputs(core::info_report(*cc).c_str(), stdout);
  return 0;
}

int cmd_emit(const std::string& name, const std::string& out) {
  const auto nl = load_circuit(name);
  netlist::write_bench_file(nl, out);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

int cmd_tgen(const std::string& name, const std::string& out) {
  const auto cc = compile_circuit(name);
  util::Timer timer;
  const auto r = core::run_tgen_job(*cc);
  std::printf("%s, %.1fs\n", r.summary.c_str(), timer.seconds());
  sim::write_sequence_file(r.sequence, out,
                           cc->name() + " deterministic test sequence");
  std::printf("wrote %s\n", out.c_str());
  if (!g_vcd_path.empty()) {
    sim::GoodSimulator good(cc->netlist());
    sim::VcdWriter vcd(g_vcd_path, cc->netlist());
    for (std::size_t u = 0; u < r.sequence.length(); ++u) {
      good.step(r.sequence.row(u));
      vcd.sample(good);
    }
    std::printf("wrote %s\n", g_vcd_path.c_str());
  }
  return 0;
}

int cmd_flow(const std::string& name) {
  const auto cc = compile_circuit(name);
  util::Timer timer;
  const auto r = core::run_flow_job(*cc);
  std::fputs(r.output.c_str(), stdout);
  std::printf("(%.1fs)\n", timer.seconds());
  return 0;
}

void write_text_file(const std::string& path, std::string_view text) {
  std::ofstream out(path, std::ios::binary);
  if (!out || !out.write(text.data(),
                         static_cast<std::streamsize>(text.size())))
    throw std::runtime_error("cannot write '" + path + "'");
}

int cmd_fsim(const std::string& name, const std::string& seq_path) {
  const auto cc = compile_circuit(name);
  const auto seq = sim::read_sequence_file(seq_path);
  const auto r = core::run_fault_sim_job(*cc, seq);
  std::fputs(r.output.c_str(), stdout);
  if (!g_result_json_path.empty()) {
    write_text_file(g_result_json_path,
                    core::render_fault_sim_result_json(r.detail));
    std::fprintf(stderr, "wrote %s\n", g_result_json_path.c_str());
  }
  return 0;
}

int cmd_synth(const std::string& name, const std::string& out) {
  const auto cc = compile_circuit(name);
  const fault::FaultSimulator sim(cc->netlist(), cc->faults(), cc->cones());
  const auto flow = core::run_flow(sim, cc->name());
  if (flow.pruned.omega.empty()) {
    std::printf("no weight assignments selected\n");
    return 1;
  }
  const auto hw = core::build_generator(flow.pruned.omega,
                                        flow.procedure.sequence_length);
  netlist::write_bench_file(hw.netlist, out);
  const auto stats = hw.stats();
  std::printf("%s: %zu sessions x %zu cycles, %zu FSMs, %zu gates, %zu FFs\n",
              out.c_str(), hw.session_count, hw.session_length,
              hw.fsms.fsm_count(), stats.logic_gates, stats.flip_flops);
  return 0;
}

int cmd_obs(const std::string& name) {
  const auto cc = compile_circuit(name);
  const fault::FaultSimulator sim(cc->netlist(), cc->faults(), cc->cones());
  const auto flow = core::run_flow(sim, cc->name());
  std::vector<fault::FaultId> targets;
  for (fault::FaultId f = 0; f < cc->faults().size(); ++f)
    if (flow.detection_time[f] != fault::DetectionResult::kUndetected)
      targets.push_back(f);
  core::ObsTradeoffConfig cfg;
  cfg.sequence_length = flow.procedure.sequence_length;
  const auto result = core::observation_point_tradeoff(
      sim, flow.procedure.omega, targets, cfg);
  util::Table t;
  t.header({"seq", "sub", "len", "f.e.", "obs", "f.e."});
  for (const auto& row : result.rows)
    t.row({std::to_string(row.n_seq), std::to_string(row.n_subs),
           std::to_string(row.max_len), util::fixed(row.fe_before, 1),
           std::to_string(row.n_obs), util::fixed(row.fe_after, 1)});
  std::fputs(t.render().c_str(), stdout);
  return 0;
}

// ---------------------------------------------------------------------------
// serve / submit

serve::Server* g_server = nullptr;

void on_signal(int) {
  // Server::request_stop is async-signal-safe by contract (one atomic
  // store plus one write to the self-pipe).
  if (g_server != nullptr) g_server->request_stop();
}

/// Fatal-signal path: dump the daemon's flight recorder to stderr (see
/// Server::dump_flight — write(2) only, no locks, no allocation), then
/// re-raise with the default disposition so the crash still produces a core
/// and the right wait status.
void on_fatal_signal(int sig) {
  if (g_server != nullptr) {
    static const char banner[] =
        "wbist serve: fatal signal — recent requests (oldest first):\n";
    [[maybe_unused]] ssize_t ignored =
        ::write(STDERR_FILENO, banner, sizeof banner - 1);
    g_server->dump_flight(STDERR_FILENO);
  }
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

/// Parse an integral option (both `--flag N` and `--flag=N`). Returns false
/// after printing an error; `found` reports presence.
bool take_int_option(std::vector<std::string>& args, std::string_view flag,
                     long long& value, bool& found) {
  std::string text;
  const util::ExtractResult r = util::extract_option(args, flag, text);
  found = r == util::ExtractResult::kFound;
  if (r == util::ExtractResult::kMissingValue) {
    std::fprintf(stderr, "wbist: %.*s needs a value\n",
                 static_cast<int>(flag.size()), flag.data());
    return false;
  }
  if (!found) return true;
  try {
    std::size_t used = 0;
    value = std::stoll(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
  } catch (const std::exception&) {
    std::fprintf(stderr, "wbist: %.*s: '%s' is not a number\n",
                 static_cast<int>(flag.size()), flag.data(), text.c_str());
    return false;
  }
  return true;
}

/// Shared --socket/--tcp endpoint parsing for serve and submit. Returns
/// false (after a usage message) unless exactly one endpoint was given.
bool take_endpoint(std::vector<std::string>& args, std::string& unix_path,
                   long long& tcp_port, bool& tcp_given) {
  std::string socket_text;
  if (util::extract_option(args, "--socket", socket_text) ==
      util::ExtractResult::kMissingValue) {
    std::fprintf(stderr, "wbist: --socket needs a path\n");
    return false;
  }
  unix_path = socket_text;
  tcp_port = -1;
  if (!take_int_option(args, "--tcp", tcp_port, tcp_given)) return false;
  if (unix_path.empty() == !tcp_given) {
    std::fprintf(stderr,
                 "wbist: give exactly one of --socket <path> and --tcp "
                 "<port>\n");
    return false;
  }
  if (tcp_given && (tcp_port < 0 || tcp_port > 65535)) {
    std::fprintf(stderr, "wbist: --tcp port out of range\n");
    return false;
  }
  return true;
}

int cmd_serve(std::vector<std::string> args) {
  serve::ServerConfig cfg;
  long long tcp_port = -1;
  bool tcp_given = false;
  if (!take_endpoint(args, cfg.unix_path, tcp_port, tcp_given)) return 2;
  if (tcp_given) cfg.tcp_port = static_cast<int>(tcp_port);

  long long value = 0;
  bool found = false;
  if (!take_int_option(args, "--serve-threads", value, found)) return 2;
  if (found && value > 0) cfg.handler_threads = static_cast<unsigned>(value);
  if (!take_int_option(args, "--worker-threads", value, found)) return 2;
  if (found && value > 0) cfg.worker_threads = static_cast<unsigned>(value);
  if (!take_int_option(args, "--cache-bytes", value, found)) return 2;
  if (found && value > 0) cfg.cache_bytes = static_cast<std::size_t>(value);
  if (!take_int_option(args, "--queue-depth", value, found)) return 2;
  if (found && value > 0) cfg.queue_depth = static_cast<std::size_t>(value);
  if (!take_int_option(args, "--max-pending", value, found)) return 2;
  if (found && value > 0)
    cfg.max_pending_conns = static_cast<std::size_t>(value);
  if (!take_int_option(args, "--idle-timeout", value, found)) return 2;
  if (found) cfg.idle_timeout_ms = static_cast<int>(value);
  if (!take_int_option(args, "--stall-timeout", value, found)) return 2;
  if (found) cfg.stall_timeout_ms = static_cast<int>(value);
  if (!take_int_option(args, "--request-timeout", value, found)) return 2;
  if (found && value > 0) cfg.request_timeout_ms = static_cast<int>(value);
  if (!take_int_option(args, "--flight-entries", value, found)) return 2;
  if (found && value > 0) cfg.flight_entries = static_cast<std::size_t>(value);
  if (!args.empty()) {
    std::fprintf(stderr, "wbist: serve: unexpected argument '%s'\n",
                 args[0].c_str());
    return 2;
  }

  const std::string unix_path = cfg.unix_path;
  serve::Server server(std::move(cfg));
  server.start();
  g_server = &server;
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGSEGV, on_fatal_signal);
  std::signal(SIGABRT, on_fatal_signal);
  std::signal(SIGBUS, on_fatal_signal);

  if (server.port() >= 0)
    std::printf("wbist serve: listening on 127.0.0.1:%d\n", server.port());
  else
    std::printf("wbist serve: listening on %s\n", unix_path.c_str());
  std::fflush(stdout);

  server.wait();
  g_server = nullptr;
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGSEGV, SIG_DFL);
  std::signal(SIGABRT, SIG_DFL);
  std::signal(SIGBUS, SIG_DFL);

  const auto stats = server.cache().stats();
  std::fprintf(stderr,
               "wbist serve: stopped (cache: %llu hits, %llu misses, "
               "%llu evictions, %zu resident)\n",
               static_cast<unsigned long long>(stats.hits),
               static_cast<unsigned long long>(stats.misses),
               static_cast<unsigned long long>(stats.evictions),
               stats.entries);
  return 0;
}

/// Append `"key":"value"` (JSON-escaped) to an in-progress object body.
void request_field(std::string& json, std::string_view key,
                   std::string_view value) {
  if (json.size() > 1) json += ',';
  util::append_json_string(json, key);
  json += ':';
  util::append_json_string(json, value);
}

/// Append `"key":N` (a bare JSON number) to an in-progress object body.
void request_field_int(std::string& json, std::string_view key,
                       long long value) {
  if (json.size() > 1) json += ',';
  util::append_json_string(json, key);
  json += ':';
  json += std::to_string(value);
}

bool take_flag(std::vector<std::string>& args, std::string_view flag);

/// Render a wbist.obs/1 block as a (tiny) wbist.trace/1 Chrome trace, so
/// the server-side spans of one observed job load in Perfetto and fold
/// through tools/trace_summary.py exactly like a local --trace-json run.
std::string obs_to_trace_json(const util::JsonValue& obs) {
  std::size_t n_spans = 0;
  if (const util::JsonValue* spans = obs.get("spans"))
    n_spans = spans->as_array().size();
  // otherData carries the wbist.trace/1 required keys (one server worker
  // thread ran the job; nothing is ever dropped from an obs block).
  std::string out =
      "{\"schema\":\"wbist.trace/1\",\"displayTimeUnit\":\"ms\","
      "\"otherData\":{\"source\":\"wbist.obs/1\",\"threads\":1,\"events\":" +
      std::to_string(n_spans) + ",\"dropped_events\":0},\"traceEvents\":[";
  bool first = true;
  if (const util::JsonValue* spans = obs.get("spans")) {
    for (const util::JsonValue& s : spans->as_array()) {
      if (!first) out += ',';
      first = false;
      out += "{\"name\":";
      util::append_json_string(out, s.get_string("name", "?"));
      out += ",\"ph\":\"X\",\"cat\":\"obs\",\"pid\":1,\"tid\":1,\"ts\":" +
             std::to_string(s.get_int("start_us", 0)) +
             ",\"dur\":" + std::to_string(s.get_int("dur_us", 0)) + "}";
    }
  }
  out += "]}\n";
  return out;
}

/// Print the wbist.obs/1 block human-readably on stderr (stdout must stay
/// bit-identical to an unobserved run — CI gates this with cmp) and write
/// the client-side artifacts when --trace-json/--metrics-json were given.
int report_observation(const util::JsonValue& obs,
                       const std::string& response_text) {
  if (const util::JsonValue* spans = obs.get("spans"))
    for (const util::JsonValue& s : spans->as_array())
      std::fprintf(stderr, "obs: span %-12s %10.3f ms (at +%.3f ms)\n",
                   s.get_string("name", "?").c_str(),
                   static_cast<double>(s.get_int("dur_us", 0)) / 1000.0,
                   static_cast<double>(s.get_int("start_us", 0)) / 1000.0);
  if (const util::JsonValue* counters = obs.get("counters"))
    for (const auto& [key, v] : counters->as_object())
      std::fprintf(stderr, "obs: %-24s %lld\n", key.c_str(),
                   static_cast<long long>(v.as_int()));
  if (const util::JsonValue* notes = obs.get("notes"))
    for (const auto& [key, v] : notes->as_object())
      std::fprintf(stderr, "obs: %-24s %s\n", key.c_str(),
                   v.as_string().c_str());
  int rc = 0;
  try {
    if (!g_trace_path.empty()) {
      // Re-extract the obs block verbatim-ish: render spans as a Chrome
      // trace. The raw daemon response goes to --metrics-json.
      write_text_file(g_trace_path, obs_to_trace_json(obs));
      std::fprintf(stderr, "wrote %s\n", g_trace_path.c_str());
    }
    if (!g_metrics_path.empty()) {
      write_text_file(g_metrics_path, response_text + "\n");
      std::fprintf(stderr, "wrote %s\n", g_metrics_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wbist: %s\n", e.what());
    rc = 1;
  }
  // Suppress main()'s epilogue: the artifacts now carry the server-side
  // observation, not this client's own (empty) trace/metrics.
  g_trace_path.clear();
  g_metrics_path.clear();
  return rc;
}

int cmd_submit(std::vector<std::string> args) {
  serve::Endpoint ep;
  long long tcp_port = -1;
  bool tcp_given = false;
  if (!take_endpoint(args, ep.unix_path, tcp_port, tcp_given)) return 2;
  if (tcp_given) ep.tcp_port = static_cast<int>(tcp_port);

  std::string collapse;
  if (util::extract_option(args, "--collapse", collapse) ==
      util::ExtractResult::kMissingValue) {
    std::fprintf(stderr, "wbist: --collapse needs a mode\n");
    return 2;
  }

  long long priority = 0, deadline_ms = 0, timeout_ms = 0;
  bool priority_given = false, deadline_given = false, timeout_given = false;
  if (!take_int_option(args, "--priority", priority, priority_given))
    return 2;
  if (!take_int_option(args, "--deadline-ms", deadline_ms, deadline_given))
    return 2;
  if (deadline_given && deadline_ms <= 0) {
    std::fprintf(stderr, "wbist: --deadline-ms must be positive\n");
    return 2;
  }
  if (!take_int_option(args, "--timeout", timeout_ms, timeout_given))
    return 2;
  if (timeout_given && timeout_ms <= 0) {
    std::fprintf(stderr, "wbist: --timeout must be positive (milliseconds)\n");
    return 2;
  }
  serve::ClientOptions copts;
  if (timeout_given) {
    copts.connect_timeout_ms = static_cast<int>(timeout_ms);
    copts.io_timeout_ms = static_cast<int>(timeout_ms);
  }
  const bool observe = take_flag(args, "--observe");

  if (args.empty()) {
    std::fprintf(stderr,
                 "usage: wbist submit --socket <path>|--tcp <port> "
                 "[--priority N] [--deadline-ms N] [--timeout MS] "
                 "[--observe] "
                 "<ping|shutdown|metrics|info|flow|tgen|fsim> [circuit] "
                 "[args]\n");
    return 2;
  }
  const std::string cli_job = args[0];
  const std::string job = cli_job == "fsim" ? "fault-sim" : cli_job;

  std::string request = "{";
  request_field(request, "schema", serve::kSchema);
  request_field(request, "job", job);
  if (!collapse.empty()) request_field(request, "collapse", collapse);
  if (priority_given) request_field_int(request, "priority", priority);
  if (deadline_given) request_field_int(request, "deadline_ms", deadline_ms);
  if (observe) {
    if (request.size() > 1) request += ',';
    request += "\"observe\":true";
  }

  const bool needs_circuit =
      job == "info" || job == "flow" || job == "tgen" || job == "fault-sim";
  std::string tgen_out;
  if (needs_circuit) {
    if (args.size() < 2) {
      std::fprintf(stderr, "wbist: submit %s needs a circuit\n",
                   cli_job.c_str());
      return 2;
    }
    const std::string& name = args[1];
    if (is_bench_path(name)) {
      // Inline the bench source; the daemon never reads client paths. The
      // stem name keeps outputs identical to compiling the file locally.
      request_field(request, "bench", read_file(name));
      request_field(request, "name", path_stem(name));
    } else {
      request_field(request, "circuit", name);
    }
    if (job == "fault-sim") {
      if (args.size() < 3) {
        std::fprintf(stderr, "wbist: submit fsim needs a sequence file\n");
        return 2;
      }
      request_field(request, "sequence", read_file(args[2]));
    } else if (job == "tgen" && args.size() > 2) {
      tgen_out = args[2];
    }
  }
  request += '}';

  // Transport failures get exit codes distinct from daemon-reported errors
  // so scripts can tell "retry later" from "fix the request": 4 = timed
  // out, 5 = no daemon reachable, 6 = framing violation.
  std::string response_text;
  try {
    response_text = serve::submit(ep, request, copts);
  } catch (const serve::TimeoutError& e) {
    std::fprintf(stderr, "wbist: %s\n", e.what());
    return 4;
  } catch (const serve::ConnectError& e) {
    std::fprintf(stderr, "wbist: %s\n", e.what());
    return 5;
  } catch (const serve::ProtocolError& e) {
    std::fprintf(stderr, "wbist: %s\n", e.what());
    return 6;
  }
  const util::JsonValue response = util::json_parse(response_text);
  const long long exit_code = response.get_int("exit", 1);
  if (!response.get_bool("ok", false)) {
    const std::string error = response.get_string("error", "daemon error");
    const long long retry = response.get_int("retry_after_ms", 0);
    const long long depth = response.get_int("queue_depth", -1);
    const long long cap = response.get_int("queue_capacity", -1);
    if (retry > 0 && depth >= 0 && cap >= 0)
      // One structured line with everything a backoff loop needs: how full
      // the daemon was and when to come back.
      std::fprintf(stderr, "wbist: %s (queue %lld/%lld, retry in %lldms)\n",
                   error.c_str(), depth, cap, retry);
    else if (retry > 0)
      std::fprintf(stderr, "wbist: %s (retry in %lldms)\n", error.c_str(),
                   retry);
    else
      std::fprintf(stderr, "wbist: %s\n", error.c_str());
    return static_cast<int>(exit_code);
  }
  if (observe) {
    if (const util::JsonValue* obs = response.get("obs")) {
      if (const int orc = report_observation(*obs, response_text); orc != 0)
        return orc;
    } else {
      std::fprintf(stderr,
                   "wbist: daemon returned no observation block (control "
                   "jobs and older daemons do not observe)\n");
    }
  }
  if (job == "metrics") {
    // The metrics payload is a nested JSON document; hand the daemon's
    // response through verbatim so nothing is re-encoded.
    std::printf("%s\n", response_text.c_str());
    return static_cast<int>(exit_code);
  }
  std::fputs(response.get_string("output").c_str(), stdout);
  if (!tgen_out.empty()) {
    const std::string seq_text = response.get_string("sequence");
    std::ofstream out(tgen_out);
    if (!out || !(out << seq_text)) {
      std::fprintf(stderr, "wbist: cannot write '%s'\n", tgen_out.c_str());
      return 1;
    }
    std::printf("wrote %s\n", tgen_out.c_str());
  }
  return static_cast<int>(exit_code);
}

// ---------------------------------------------------------------------------
// stats / top

/// Prometheus metric-name charset: [a-zA-Z0-9_:]; everything else becomes
/// '_' (so "serve.run_us.flow" -> "serve_run_us_flow").
std::string prom_name(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s)
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
            c == ':')
               ? c
               : '_';
  return out;
}

/// Render a wbist.stats/1 document in Prometheus text exposition format:
/// gauges for queue/cache/flight state, counters for the monotonic counter
/// registry, and summaries (quantile-labelled series + _sum + _count) for
/// the histograms.
std::string render_prometheus(const util::JsonValue& stats) {
  std::string out;
  char buf[192];
  const auto emit = [&](const std::string& name, const char* type, double v) {
    out += "# TYPE " + name + " " + type + "\n";
    std::snprintf(buf, sizeof buf, "%s %.17g\n", name.c_str(), v);
    out += buf;
  };
  emit("wbist_uptime_seconds", "gauge",
       stats.get("uptime_s") != nullptr ? stats.get("uptime_s")->as_number()
                                        : 0.0);
  if (const util::JsonValue* q = stats.get("queue"))
    for (const auto& [key, v] : q->as_object())
      emit("wbist_queue_" + prom_name(key), "gauge", v.as_number());
  if (const util::JsonValue* c = stats.get("cache"))
    for (const auto& [key, v] : c->as_object())
      emit("wbist_cache_" + prom_name(key), "gauge", v.as_number());
  if (const util::JsonValue* f = stats.get("flight"))
    for (const auto& [key, v] : f->as_object())
      emit("wbist_flight_" + prom_name(key), "gauge", v.as_number());
  if (const util::JsonValue* counters = stats.get("counters"))
    for (const auto& [key, v] : counters->as_object())
      emit("wbist_" + prom_name(key) + "_total", "counter", v.as_number());
  if (const util::JsonValue* hists = stats.get("histograms"))
    for (const auto& [key, h] : hists->as_object()) {
      const std::string base = "wbist_" + prom_name(key);
      out += "# TYPE " + base + " summary\n";
      const auto quantile = [&](const char* q, const char* field) {
        std::snprintf(buf, sizeof buf, "%s{quantile=\"%s\"} %.17g\n",
                      base.c_str(), q,
                      h.get(field) != nullptr ? h.get(field)->as_number()
                                              : 0.0);
        out += buf;
      };
      quantile("0.5", "p50");
      quantile("0.9", "p90");
      quantile("0.99", "p99");
      std::snprintf(buf, sizeof buf, "%s_sum %.17g\n%s_count %.17g\n",
                    base.c_str(),
                    h.get("sum") != nullptr ? h.get("sum")->as_number() : 0.0,
                    base.c_str(),
                    h.get("count") != nullptr ? h.get("count")->as_number()
                                              : 0.0);
      out += buf;
    }
  return out;
}

int cmd_stats(std::vector<std::string> args) {
  serve::Endpoint ep;
  long long tcp_port = -1;
  bool tcp_given = false;
  if (!take_endpoint(args, ep.unix_path, tcp_port, tcp_given)) return 2;
  if (tcp_given) ep.tcp_port = static_cast<int>(tcp_port);
  const bool prom = take_flag(args, "--prom");
  const bool flight = take_flag(args, "--flight");
  if (prom && flight) {
    std::fprintf(stderr, "wbist: --prom renders stats, not the flight ring\n");
    return 2;
  }
  long long timeout_ms = 0;
  bool timeout_given = false;
  if (!take_int_option(args, "--timeout", timeout_ms, timeout_given))
    return 2;
  serve::ClientOptions copts;
  if (timeout_given && timeout_ms > 0) {
    copts.connect_timeout_ms = static_cast<int>(timeout_ms);
    copts.io_timeout_ms = static_cast<int>(timeout_ms);
  }
  if (!args.empty()) {
    std::fprintf(stderr, "wbist: stats: unexpected argument '%s'\n",
                 args[0].c_str());
    return 2;
  }

  std::string request = "{";
  request_field(request, "schema", serve::kSchema);
  request_field(request, "job", flight ? "flight" : "stats");
  request += '}';
  std::string response_text;
  try {
    response_text = serve::submit(ep, request, copts);
  } catch (const serve::TimeoutError& e) {
    std::fprintf(stderr, "wbist: %s\n", e.what());
    return 4;
  } catch (const serve::ConnectError& e) {
    std::fprintf(stderr, "wbist: %s\n", e.what());
    return 5;
  } catch (const serve::ProtocolError& e) {
    std::fprintf(stderr, "wbist: %s\n", e.what());
    return 6;
  }
  const util::JsonValue response = util::json_parse(response_text);
  if (!response.get_bool("ok", false)) {
    std::fprintf(stderr, "wbist: %s\n",
                 response.get_string("error", "daemon error").c_str());
    return static_cast<int>(response.get_int("exit", 1));
  }
  if (prom) {
    const util::JsonValue* stats = response.get("stats");
    if (stats == nullptr) {
      std::fprintf(stderr, "wbist: daemon response carries no stats block\n");
      return 6;
    }
    std::fputs(render_prometheus(*stats).c_str(), stdout);
    return 0;
  }
  // JSON mode: hand the daemon's response through verbatim (like `submit
  // metrics`), so nothing is re-encoded.
  std::printf("%s\n", response_text.c_str());
  return 0;
}

/// One rendered frame of `wbist top`: campaign totals, a progress bar, and
/// a per-worker table, from one wbist.campaign.status/1 snapshot.
std::string render_top(const util::JsonValue& st) {
  char buf[256];
  const long long total = st.get_int("shards_total", 0);
  const long long done_n = st.get_int("shards_done", 0);
  const double frac =
      total > 0 ? static_cast<double>(done_n) / static_cast<double>(total)
                : 0.0;
  std::string out = "campaign " + st.get_string("campaign", "?") +
                    "   circuit " + st.get_string("circuit", "?") +
                    "   collapse " + st.get_string("collapse", "?") + "\n";
  constexpr int kBar = 32;
  const int filled = static_cast<int>(frac * kBar + 0.5);
  out += "shards  [";
  for (int i = 0; i < kBar; ++i) out += i < filled ? '#' : '-';
  std::snprintf(buf, sizeof buf, "] %lld/%lld (%.1f%%)", done_n, total,
                frac * 100.0);
  out += buf;
  std::snprintf(buf, sizeof buf, "   %lld resumed, %lld retried\n",
                static_cast<long long>(st.get_int("shards_resumed", 0)),
                static_cast<long long>(st.get_int("shards_retried", 0)));
  out += buf;
  const long long faults = st.get_int("faults", 0);
  const long long detected = st.get_int("detected", 0);
  std::snprintf(buf, sizeof buf,
                "faults  %lld/%lld detected (%.1f%%)   sequence %lld "
                "vectors\n",
                detected, faults,
                faults > 0 ? 100.0 * static_cast<double>(detected) /
                                 static_cast<double>(faults)
                           : 0.0,
                static_cast<long long>(st.get_int("seq_length", 0)));
  out += buf;
  const double eta = st.get("eta_s") != nullptr
                         ? st.get("eta_s")->as_number()
                         : -1.0;
  std::snprintf(buf, sizeof buf,
                "workers %lld spawned, %lld deaths   elapsed %.1fs   ",
                static_cast<long long>(st.get_int("workers_spawned", 0)),
                static_cast<long long>(st.get_int("worker_deaths", 0)),
                st.get("elapsed_s") != nullptr
                    ? st.get("elapsed_s")->as_number()
                    : 0.0);
  out += buf;
  if (st.get_bool("complete", false))
    out += "complete\n";
  else if (eta >= 0.0) {
    std::snprintf(buf, sizeof buf, "eta %.1fs\n", eta);
    out += buf;
  } else {
    out += "eta --\n";
  }
  if (const util::JsonValue* workers = st.get("workers");
      workers != nullptr && !workers->as_array().empty()) {
    out += "\n     pid    shard      kernel_cycles      cycles/s   last_hb\n";
    for (const util::JsonValue& w : workers->as_array()) {
      const long long shard = w.get_int("shard", -1);
      std::snprintf(buf, sizeof buf, "%8lld %8s %18lld %13.3g %8.1fs\n",
                    static_cast<long long>(w.get_int("pid", 0)),
                    shard < 0 ? "-" : std::to_string(shard).c_str(),
                    static_cast<long long>(w.get_int("kernel_cycles", 0)),
                    w.get("cycles_per_s") != nullptr
                        ? w.get("cycles_per_s")->as_number()
                        : 0.0,
                    w.get("last_heartbeat_s") != nullptr
                        ? w.get("last_heartbeat_s")->as_number()
                        : -1.0);
      out += buf;
    }
  }
  return out;
}

int cmd_top(std::vector<std::string> args) {
  const bool once = take_flag(args, "--once");
  long long interval_ms = 1000;
  bool found = false;
  if (!take_int_option(args, "--interval-ms", interval_ms, found)) return 2;
  if (found && interval_ms <= 0) {
    std::fprintf(stderr, "wbist: --interval-ms must be positive\n");
    return 2;
  }
  if (args.size() != 1) {
    std::fprintf(stderr,
                 "usage: wbist top <status.json> [--once] [--interval-ms N]\n");
    return 2;
  }
  const std::string path = args[0];

  bool waiting_notice = false;
  while (true) {
    util::JsonValue st;
    bool have = false;
    try {
      st = util::json_parse(read_file(path));
      have = st.get_string("schema") == "wbist.campaign.status/1";
      if (!have && once) {
        std::fprintf(stderr, "wbist: %s is not a wbist.campaign.status/1 "
                             "snapshot\n",
                     path.c_str());
        return 1;
      }
    } catch (const std::exception& e) {
      // Not written yet (or mid-replace on a filesystem without atomic
      // rename): poll again, or fail fast under --once.
      if (once) {
        std::fprintf(stderr, "wbist: %s\n", e.what());
        return 1;
      }
    }
    if (have) {
      const std::string frame = render_top(st);
      if (!once) std::fputs("\033[H\033[J", stdout);
      std::fputs(frame.c_str(), stdout);
      std::fflush(stdout);
      if (once || st.get_bool("complete", false)) return 0;
    } else if (!once && !waiting_notice) {
      waiting_notice = true;
      std::printf("wbist top: waiting for %s ...\n", path.c_str());
      std::fflush(stdout);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}

// ---------------------------------------------------------------------------
// campaign / campaign-worker

bool take_path_option(std::vector<std::string>& args, std::string_view flag,
                      std::string& value);

fault::CollapseMode parse_collapse(const std::string& s) {
  if (s == "none") return fault::CollapseMode::kNone;
  if (s == "equivalence") return fault::CollapseMode::kEquivalence;
  if (s == "dominance") return fault::CollapseMode::kDominance;
  throw std::invalid_argument("unknown collapse mode '" + s + "'");
}

/// Strip every occurrence of a valueless flag; true when it was present.
bool take_flag(std::vector<std::string>& args, std::string_view flag) {
  bool found = false;
  for (auto it = args.begin(); it != args.end();) {
    if (*it == flag) {
      found = true;
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  return found;
}

/// A deterministic random binary sequence in `.seq` text form: `cycles`
/// rows of `width` 0/1 characters from util::Rng(seed). Large-circuit
/// campaigns use this instead of tgen (whose deterministic generation is
/// not the object under test and is slow at s9234+ scale).
std::string random_sequence_text(std::size_t cycles, std::size_t width,
                                 std::uint64_t seed) {
  util::Rng rng(seed);
  std::string text;
  text.reserve(cycles * (width + 1));
  for (std::size_t u = 0; u < cycles; ++u) {
    for (std::size_t i = 0; i < width; ++i)
      text += (rng.next_u64() & 1) != 0 ? '1' : '0';
    text += '\n';
  }
  return text;
}

/// wbist.bench.procedure/1-shaped report for a campaign run, so campaign
/// results flow through the same compare_bench.py regression gate as the
/// procedure bench. Procedure-only fields are omitted (the comparer skips
/// absent warn fields); fault_efficiency here is collapsed detected/total.
std::string render_campaign_bench_json(const std::string& label,
                                       const serve::CampaignOutcome& outcome,
                                       const fault::FaultSet& fs,
                                       fault::CollapseMode collapse,
                                       unsigned workers, double wall_s) {
  const core::FaultSimResult& r = outcome.result;
  std::size_t uncollapsed_detected = 0;
  for (fault::FaultId f = 0; f < r.total(); ++f)
    if (r.detection_time[f] != fault::DetectionResult::kUndetected)
      uncollapsed_detected += fs.represented_size(f);
  const std::size_t uncollapsed_faults = fs.uncollapsed_size();
  const char* collapse_text = collapse == fault::CollapseMode::kNone
                                  ? "none"
                                  : collapse == fault::CollapseMode::kDominance
                                        ? "dominance"
                                        : "equivalence";
  std::string out = "{\n  \"schema\": \"wbist.bench.procedure/1\",\n";
  out += "  \"label\": ";
  util::append_json_string(out, label);
  out += ",\n  \"threads\": " + std::to_string(workers) + ",\n";
  out += "  \"kernel\": ";
  util::append_json_string(out, sim::active_kernel().name);
  out +=
      ",\n  \"kernel_words\": " + std::to_string(sim::active_kernel().words);
  out += ",\n  \"collapse\": ";
  util::append_json_string(out, collapse_text);
  out += ",\n  \"circuits\": [\n    {\"name\": ";
  util::append_json_string(out, r.circuit);
  char buf[64];
  std::snprintf(buf, sizeof buf, ", \"wall_s\": %.6f", wall_s);
  out += buf;
  std::snprintf(
      buf, sizeof buf, ", \"fault_efficiency\": %.6f",
      r.total() == 0 ? 1.0
                     : static_cast<double>(r.detected) /
                           static_cast<double>(r.total()));
  out += buf;
  out += ",\n     \"t_length\": " + std::to_string(r.seq_length);
  out += ", \"t_detected\": " + std::to_string(r.detected);
  out += ",\n     \"kernel_cycles\": " +
         std::to_string(outcome.kernel_cycles);
  out += ", \"fault_cycles\": " + std::to_string(outcome.fault_cycles);
  out += ", \"trace_cycles\": " + std::to_string(outcome.trace_cycles);
  out += ",\n     \"fault_list_size\": " + std::to_string(r.total());
  out += ", \"uncollapsed_faults\": " + std::to_string(uncollapsed_faults);
  out +=
      ", \"uncollapsed_detected\": " + std::to_string(uncollapsed_detected);
  std::snprintf(buf, sizeof buf, ", \"uncollapsed_coverage\": %.6f",
                uncollapsed_faults == 0
                    ? 1.0
                    : static_cast<double>(uncollapsed_detected) /
                          static_cast<double>(uncollapsed_faults));
  out += buf;
  out += "}\n  ]\n}\n";
  return out;
}

int cmd_campaign(std::vector<std::string> args) {
  serve::CampaignOptions opts;
  opts.worker_exe = serve::self_exe_path(g_argv0);

  long long v = 0;
  bool found = false;
  const auto positive = [](const char* flag, long long val) {
    if (val > 0) return true;
    std::fprintf(stderr, "wbist: %s must be positive\n", flag);
    return false;
  };
  if (!take_int_option(args, "--workers", v, found)) return 2;
  if (found && !positive("--workers", v)) return 2;
  if (found) opts.workers = static_cast<unsigned>(v);
  if (!take_int_option(args, "--shards", v, found)) return 2;
  if (found && !positive("--shards", v)) return 2;
  if (found) opts.shards = static_cast<std::size_t>(v);
  if (!take_int_option(args, "--worker-threads", v, found)) return 2;
  if (found && !positive("--worker-threads", v)) return 2;
  if (found) opts.worker_threads = static_cast<unsigned>(v);
  if (!take_int_option(args, "--retries", v, found)) return 2;
  if (found && v < 0) {
    std::fprintf(stderr, "wbist: --retries must be >= 0\n");
    return 2;
  }
  if (found) opts.max_retries = static_cast<unsigned>(v);
  if (!take_int_option(args, "--halt-after", v, found)) return 2;
  if (found && !positive("--halt-after", v)) return 2;
  if (found) opts.halt_after = static_cast<std::size_t>(v);
  long long random_cycles = 0;
  bool random_given = false;
  if (!take_int_option(args, "--random-cycles", random_cycles, random_given))
    return 2;
  if (random_given && random_cycles <= 0) {
    std::fprintf(stderr, "wbist: --random-cycles must be positive\n");
    return 2;
  }
  long long seed = 1;
  bool seed_given = false;
  if (!take_int_option(args, "--seed", seed, seed_given)) return 2;
  opts.resume = take_flag(args, "--resume");
  if (!take_int_option(args, "--heartbeat-ms", v, found)) return 2;
  if (found && v < 0) {
    std::fprintf(stderr, "wbist: --heartbeat-ms must be >= 0 (0 disables)\n");
    return 2;
  }
  if (found) opts.heartbeat_ms = static_cast<int>(v);
  std::string checkpoint, save_seq, bench_json, label, collapse_text;
  std::string status_json, worker_trace_dir;
  if (!take_path_option(args, "--checkpoint", checkpoint) ||
      !take_path_option(args, "--save-seq", save_seq) ||
      !take_path_option(args, "--bench-json", bench_json) ||
      !take_path_option(args, "--label", label) ||
      !take_path_option(args, "--status-json", status_json) ||
      !take_path_option(args, "--worker-trace-dir", worker_trace_dir))
    return 2;
  if (util::extract_option(args, "--collapse", collapse_text) ==
      util::ExtractResult::kMissingValue) {
    std::fprintf(stderr, "wbist: --collapse needs a mode\n");
    return 2;
  }
  if (util::extract_option(args, "--campaign-id", opts.campaign_id) ==
      util::ExtractResult::kMissingValue) {
    std::fprintf(stderr, "wbist: --campaign-id needs a name\n");
    return 2;
  }

  if (args.empty()) {
    std::fprintf(stderr,
                 "wbist: campaign needs a circuit (and a .seq file or "
                 "--random-cycles N)\n");
    return 2;
  }
  const std::string name = args[0];
  const std::string seq_path = args.size() > 1 ? args[1] : "";
  if (args.size() > 2) {
    std::fprintf(stderr, "wbist: campaign: unexpected argument '%s'\n",
                 args[2].c_str());
    return 2;
  }
  if (seq_path.empty() == !random_given) {
    std::fprintf(stderr,
                 "wbist: campaign needs exactly one of a .seq file and "
                 "--random-cycles N\n");
    return 2;
  }

  try {
    if (!collapse_text.empty()) opts.collapse = parse_collapse(collapse_text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wbist: %s\n", e.what());
    return 2;
  }

  const std::string display =
      is_bench_path(name) ? path_stem(name) : name;
  opts.checkpoint_path = util::out_path(
      checkpoint.empty() ? display + ".campaign.jsonl" : checkpoint);
  if (!status_json.empty())
    opts.status_json_path = util::out_path(status_json);
  if (!worker_trace_dir.empty()) {
    opts.trace_dir = util::out_path(worker_trace_dir);
    // Best-effort: workers open files inside it and fail loudly otherwise.
    ::mkdir(opts.trace_dir.c_str(), 0777);
  }

  util::Timer timer;
  int rc = 0;
  // The driver derives only what sharding needs — the netlist and the
  // collapsed fault list. The expensive fanout-cone closure is paid in
  // the workers, each of which compiles the full artifact itself. An
  // unknown circuit propagates to main's runtime-error handler (exit 1),
  // matching every other subcommand.
  const netlist::Netlist nl = load_circuit(name);
  try {
    const fault::FaultSet fs = fault::FaultSet::collapsed(nl, opts.collapse);

    std::string seq_text;
    if (random_given)
      seq_text = random_sequence_text(
          static_cast<std::size_t>(random_cycles),
          nl.primary_inputs().size(), static_cast<std::uint64_t>(seed));
    else
      seq_text = read_file(seq_path);
    const sim::TestSequence seq = sim::read_sequence(seq_text);
    if (seq.width() != nl.primary_inputs().size())
      throw std::invalid_argument(
          "sequence width " + std::to_string(seq.width()) + " does not match " +
          display + "'s " + std::to_string(nl.primary_inputs().size()) +
          " primary inputs");
    if (!save_seq.empty()) {
      const std::string p = util::out_path(save_seq);
      write_text_file(p, seq_text);
      std::fprintf(stderr, "wrote %s\n", p.c_str());
    }

    const serve::CampaignOutcome outcome = serve::run_campaign(
        spec_for(name), display, fs.size(), seq_text, seq.length(), opts);

    // Stdout carries exactly the fsim summary line, so the two commands can
    // be diffed; the campaign accounting goes to stderr.
    std::fputs(core::render_fault_sim_summary(display, outcome.result.detected,
                                              outcome.result.total(),
                                              outcome.result.seq_length)
                   .c_str(),
               stdout);
    std::fprintf(
        stderr,
        "campaign: %zu/%zu shards this run (%zu resumed, %zu retried), "
        "%zu workers spawned, %zu deaths, %.1fs\n",
        outcome.shards_total - outcome.shards_resumed, outcome.shards_total,
        outcome.shards_resumed, outcome.shards_retried,
        outcome.workers_spawned, outcome.worker_deaths, timer.seconds());
    std::fprintf(stderr, "checkpoint: %s\n", opts.checkpoint_path.c_str());

    if (!g_result_json_path.empty()) {
      write_text_file(g_result_json_path,
                      core::render_fault_sim_result_json(outcome.result));
      std::fprintf(stderr, "wrote %s\n", g_result_json_path.c_str());
    }
    if (!bench_json.empty()) {
      const std::string p = util::out_path(bench_json);
      write_text_file(
          p, render_campaign_bench_json(
                 label.empty() ? "campaign" : label, outcome, fs,
                 opts.collapse, opts.workers, timer.seconds()));
      std::fprintf(stderr, "wrote %s\n", p.c_str());
    }
    if (!outcome.complete) {
      std::fprintf(stderr,
                   "campaign: halted with shards outstanding — rerun with "
                   "--resume to finish\n");
      rc = 3;
    }
  } catch (const core::CampaignCheckpointError& e) {
    std::fprintf(stderr, "wbist: %s\n", e.what());
    return 2;
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "wbist: %s\n", e.what());
    return 2;
  }
  return rc;
}

/// One campaign worker: a frame loop over stdin/stdout (a socketpair the
/// driver owns). Protocol errors are answered as structured {"ok":false}
/// frames — the driver treats them as fatal configuration problems — and
/// stdout is *only* frames, never text.
int cmd_campaign_worker() {
  // A retired worker may race a heartbeat write against the driver closing
  // the socketpair: EPIPE must surface as an exception, not kill us.
  std::signal(SIGPIPE, SIG_IGN);
  long long delay_ms = 0;
  if (const char* d = std::getenv("WBIST_CAMPAIGN_TEST_SHARD_DELAY_MS");
      d != nullptr)
    delay_ms = std::atoll(d);

  std::shared_ptr<const core::CompiledCircuit> cc;
  std::unique_ptr<fault::FaultSimulator> simulator;
  fault::GoodTrace trace;
  std::size_t seq_length = 0;
  unsigned threads = 1;
  util::MetricsRegistry& reg = util::metrics();

  // Live-progress context from the init frame. The heartbeat thread shares
  // stdout with the frame loop, so every frame write goes through one mutex
  // (frames must never interleave mid-frame on the socketpair).
  std::string campaign_id;
  std::string trace_dir;
  long long heartbeat_ms = 0;
  std::mutex write_mu;
  std::atomic<bool> hb_stop{false};
  std::thread hb_thread;
  const auto send_frame = [&](const std::string& frame) {
    const std::lock_guard<std::mutex> lock(write_mu);
    serve::write_frame(STDOUT_FILENO, frame);
  };
  const auto heartbeat_main = [&] {
    using namespace std::chrono;
    auto next = steady_clock::now() + milliseconds(heartbeat_ms);
    while (!hb_stop.load(std::memory_order_acquire)) {
      if (steady_clock::now() < next) {
        std::this_thread::sleep_for(milliseconds(20));
        continue;
      }
      next = steady_clock::now() + milliseconds(heartbeat_ms);
      // Cumulative process-wide counters; the driver keeps the last sample
      // per worker, so deltas and rates are its job.
      std::string hb = "{\"ok\":true,\"job\":\"heartbeat\"";
      hb += ",\"kernel_cycles\":" +
            std::to_string(reg.counter("fault_sim.kernel_cycles").value());
      hb += ",\"fault_cycles\":" +
            std::to_string(reg.counter("fault_sim.fault_cycles").value());
      hb += '}';
      try {
        send_frame(hb);
      } catch (const std::exception&) {
        return;  // driver is gone; the frame loop will see EOF
      }
    }
  };
  const auto stop_heartbeat = [&] {
    hb_stop.store(true, std::memory_order_release);
    if (hb_thread.joinable()) hb_thread.join();
  };

  std::string payload;
  while (serve::read_frame(STDIN_FILENO, payload)) {
    bool start_heartbeat = false;
    std::string resp = "{";
    try {
      const util::JsonValue req = util::json_parse(payload);
      const std::string job = req.get_string("job");
      if (job == "init") {
        core::CircuitSpec spec;
        spec.registry_name = req.get_string("circuit");
        if (spec.registry_name.empty()) {
          spec.bench_text = req.get_string("bench");
          spec.display_name = req.get_string("name");
          if (spec.bench_text.empty())
            throw std::invalid_argument("init carries no circuit");
        }
        core::CompileOptions copts;
        if (const std::string c = req.get_string("collapse"); !c.empty())
          copts.collapse = parse_collapse(c);
        if (const long long t = req.get_int("threads", 1); t > 0)
          threads = static_cast<unsigned>(t);
        campaign_id = req.get_string("campaign");
        trace_dir = req.get_string("trace_dir");
        heartbeat_ms = req.get_int("heartbeat_ms", 0);
        if (const char* h = std::getenv("WBIST_CAMPAIGN_HEARTBEAT_MS");
            h != nullptr)
          heartbeat_ms = std::atoll(h);
        start_heartbeat = heartbeat_ms > 0 && !hb_thread.joinable();
        if (!trace_dir.empty()) util::TraceRegistry::global().start();
        cc = core::CompiledCircuit::compile(spec, copts);
        simulator = std::make_unique<fault::FaultSimulator>(
            cc->netlist(), cc->faults(), cc->cones());
        const sim::TestSequence seq =
            sim::read_sequence(req.get_string("sequence"));
        seq_length = seq.length();
        const std::uint64_t cycles0 =
            reg.counter("fault_sim.trace_cycles").value();
        trace = simulator->make_trace(seq);
        resp += "\"ok\":true,\"job\":\"init\"";
        resp += ",\"faults\":" + std::to_string(cc->faults().size());
        resp += ",\"seq_len\":" + std::to_string(seq_length);
        resp += ",\"trace_cycles\":" +
                std::to_string(reg.counter("fault_sim.trace_cycles").value() -
                               cycles0);
      } else if (job == "shard") {
        if (simulator == nullptr)
          throw std::invalid_argument("shard request before init");
        // Test hook: hold the shard in flight so kill-mid-run CI tests can
        // land a SIGKILL deterministically.
        if (delay_ms > 0)
          std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
        core::ShardResult s;
        s.shard = static_cast<std::uint32_t>(req.get_int("shard"));
        s.begin = static_cast<std::uint32_t>(req.get_int("begin"));
        s.end = static_cast<std::uint32_t>(req.get_int("end"));
        s.attempt = static_cast<std::uint32_t>(req.get_int("attempt", 1));
        if (s.begin > s.end || s.end > cc->faults().size())
          throw std::invalid_argument("shard range outside the fault list");
        std::vector<fault::FaultId> ids;
        ids.reserve(s.end - s.begin);
        for (std::uint32_t f = s.begin; f < s.end; ++f) ids.push_back(f);
        fault::FaultSimOptions fopts;
        fopts.threads = threads;
        const std::uint64_t kernel0 =
            reg.counter("fault_sim.kernel_cycles").value();
        const std::uint64_t fault0 =
            reg.counter("fault_sim.fault_cycles").value();
        fault::DetectionResult det;
        {
          // Stamped with the campaign id so trace_summary.py --merge can
          // stitch every worker's shards onto one cross-process timeline.
          util::TraceSpan span("campaign.shard",
                               util::TraceArg("shard", s.shard),
                               util::TraceArg("attempt", s.attempt),
                               util::TraceArg::copy("campaign", campaign_id));
          det = simulator->run(trace, ids, fopts);
        }
        s.kernel_cycles =
            reg.counter("fault_sim.kernel_cycles").value() - kernel0;
        s.fault_cycles =
            reg.counter("fault_sim.fault_cycles").value() - fault0;
        s.detection_time = det.detection_time;
        s.detecting_line = det.detecting_line;
        resp += "\"ok\":true,\"job\":\"shard\"";
        core::append_shard_fields(resp, s);
      } else {
        throw std::invalid_argument("unknown campaign job '" + job + "'");
      }
    } catch (const std::exception& e) {
      resp = "{\"ok\":false,\"exit\":2,\"error\":";
      util::append_json_string(resp, e.what());
    }
    resp += '}';
    send_frame(resp);
    if (start_heartbeat) hb_thread = std::thread(heartbeat_main);
  }
  stop_heartbeat();
  if (!trace_dir.empty()) {
    util::TraceRegistry::global().stop();
    const std::string p =
        trace_dir + "/worker-" + std::to_string(::getpid()) + ".trace.json";
    try {
      util::TraceRegistry::global().write_json(p);
    } catch (const std::exception& e) {
      // stderr is ours to use (stdout is only frames); a failed trace dump
      // never fails the shard work already handed back to the driver.
      std::fprintf(stderr, "campaign-worker: %s\n", e.what());
    }
  }
  return 0;  // clean EOF: the driver retired this worker
}

int usage() {
  std::fputs(
      "usage: wbist <command> [args] [--metrics-json <path>]\n"
      "             [--trace-json <path>] [--provenance-jsonl <path>]\n"
      "             [--kernel auto|generic|avx2]\n"
      "  list                         known circuits\n"
      "  info  <circuit>              structure and fault counts\n"
      "  emit  <circuit> [out.bench]  write the netlist\n"
      "  tgen  <circuit> [out.seq]    deterministic sequence + compaction\n"
      "                               (--vcd <path>: good-machine waveform)\n"
      "  flow  <circuit>              full weighted-BIST flow (Table-6 row)\n"
      "  fsim  <circuit> <seq-file>   fault-simulate a .seq file\n"
      "                               (--result-json <path>: canonical\n"
      "                               per-fault detection document)\n"
      "  synth <circuit> [out.bench]  emit the Figure-1 generator netlist\n"
      "  obs   <circuit>              observation-point tradeoff\n"
      "  serve --socket <path>|--tcp <port> [--serve-threads N]\n"
      "        [--worker-threads N] [--cache-bytes N] [--queue-depth N]\n"
      "        [--max-pending N] [--idle-timeout MS] [--stall-timeout MS]\n"
      "        [--request-timeout MS] [--flight-entries N]\n"
      "                               persistent daemon (wbist.serve/1):\n"
      "                               bounded job queue with backpressure,\n"
      "                               slow clients evicted past the timeouts\n"
      "  submit --socket <path>|--tcp <port> [--priority N]\n"
      "        [--deadline-ms N] [--timeout MS] [--observe] <job> [circuit]\n"
      "        [args]                 send one job to a running daemon\n"
      "                               (exit: 3 overloaded/deadline, 4 client\n"
      "                               timeout, 5 unreachable, 6 bad frame;\n"
      "                               --observe returns the job's wbist.obs/1\n"
      "                               block — spans and counter deltas — on\n"
      "                               stderr, leaving stdout bit-identical;\n"
      "                               with --trace-json/--metrics-json the\n"
      "                               server-side observation is written\n"
      "                               there instead of the client's own)\n"
      "  stats --socket <path>|--tcp <port> [--prom] [--flight]\n"
      "        [--timeout MS]         daemon-wide wbist.stats/1 snapshot as\n"
      "                               JSON; --prom renders Prometheus text\n"
      "                               exposition; --flight dumps the recent-\n"
      "                               request flight recorder (answered\n"
      "                               inline even when the queue is full)\n"
      "  top <status.json> [--once] [--interval-ms N]\n"
      "                               refreshing terminal view of a running\n"
      "                               campaign's --status-json snapshot\n"
      "  campaign <circuit> [seq-file] [--workers N] [--shards N]\n"
      "        [--worker-threads N] [--retries N] [--checkpoint <path>]\n"
      "        [--resume] [--random-cycles N] [--seed N] [--save-seq <path>]\n"
      "        [--result-json <path>] [--bench-json <path>] [--label S]\n"
      "        [--collapse none|equivalence|dominance] [--halt-after N]\n"
      "        [--status-json <path>] [--heartbeat-ms N]\n"
      "        [--worker-trace-dir <dir>] [--campaign-id S]\n"
      "                               shard the fault list across worker\n"
      "                               processes; results are bit-identical\n"
      "                               to fsim; completed shards checkpoint\n"
      "                               to <circuit>.campaign.jsonl and\n"
      "                               --resume replays them (exit: 2 bad\n"
      "                               usage/checkpoint, 3 halted early)\n"
      "a circuit is a registry name (see `list`) or a .bench file path;\n"
      "--metrics-json dumps the run-metrics registry, --trace-json records a\n"
      "Chrome/Perfetto trace, --provenance-jsonl streams per-fault detection\n"
      "provenance (see EXPERIMENTS.md); all artifact paths resolve against\n"
      "WBIST_OUT_DIR; --kernel pins the simulation backend (auto = widest\n"
      "this CPU supports; all are bit-identical)\n",
      stderr);
  return 2;
}

int dispatch(std::vector<std::string> args) {
  if (args.empty()) return usage();
  const std::string cmd = args[0];
  args.erase(args.begin());
  if (cmd == "list") return cmd_list();
  if (cmd == "serve") return cmd_serve(std::move(args));
  if (cmd == "submit") return cmd_submit(std::move(args));
  if (cmd == "stats") return cmd_stats(std::move(args));
  if (cmd == "top") return cmd_top(std::move(args));
  if (cmd == "campaign") return cmd_campaign(std::move(args));
  if (cmd == "campaign-worker") return cmd_campaign_worker();
  if (args.empty()) return usage();
  const std::string& name = args[0];
  const std::string arg3 = args.size() > 1 ? args[1] : "";
  if (cmd == "info") return cmd_info(name);
  if (cmd == "emit")
    return cmd_emit(name, arg3.empty() ? name + ".bench" : arg3);
  if (cmd == "tgen")
    return cmd_tgen(name, arg3.empty() ? name + ".seq" : arg3);
  if (cmd == "flow") return cmd_flow(name);
  if (cmd == "fsim") {
    if (arg3.empty()) return usage();
    return cmd_fsim(name, arg3);
  }
  if (cmd == "synth")
    return cmd_synth(name, arg3.empty() ? name + "_bist.bench" : arg3);
  if (cmd == "obs") return cmd_obs(name);
  return usage();
}

/// Strip one path-valued option via util::extract_option. Returns false
/// (after printing a usage error) when the flag is present without a value.
bool take_path_option(std::vector<std::string>& args, std::string_view flag,
                      std::string& value) {
  const util::ExtractResult r = util::extract_option(args, flag, value);
  if (r == util::ExtractResult::kMissingValue ||
      (r == util::ExtractResult::kFound && value.empty())) {
    std::fprintf(stderr, "wbist: %.*s needs a path\n",
                 static_cast<int>(flag.size()), flag.data());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the position-independent options before dispatch so positional
  // parsing never sees them.
  if (argc > 0 && argv[0] != nullptr) g_argv0 = argv[0];
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string provenance_path;
  if (!take_path_option(args, "--metrics-json", g_metrics_path) ||
      !take_path_option(args, "--trace-json", g_trace_path) ||
      !take_path_option(args, "--provenance-jsonl", provenance_path) ||
      !take_path_option(args, "--vcd", g_vcd_path) ||
      !take_path_option(args, "--result-json", g_result_json_path))
    return 2;
  // Every artifact path honours WBIST_OUT_DIR, not just --vcd.
  if (!g_metrics_path.empty())
    g_metrics_path = wbist::util::out_path(g_metrics_path);
  if (!g_trace_path.empty()) g_trace_path = wbist::util::out_path(g_trace_path);
  if (!provenance_path.empty())
    provenance_path = wbist::util::out_path(provenance_path);
  if (!g_vcd_path.empty()) g_vcd_path = wbist::util::out_path(g_vcd_path);
  if (!g_result_json_path.empty())
    g_result_json_path = wbist::util::out_path(g_result_json_path);

  // Backend override before any simulator is constructed. The resolved
  // backend (overridden or not) lands in the metrics labels so a
  // --metrics-json dump always records which kernel produced the run.
  std::string kernel_spec;
  if (!take_path_option(args, "--kernel", kernel_spec)) return 2;
  if (!kernel_spec.empty()) {
    try {
      wbist::sim::select_kernel(kernel_spec);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "wbist: %s\n", e.what());
      return 2;
    }
  }
  wbist::util::metrics().set_label("kernel.backend",
                                   wbist::sim::active_kernel().name);

  // Tracing and provenance start before any work so every span/detection of
  // the run is captured; both are observation-only (see util/trace.h).
  const bool tracing = !g_trace_path.empty();
  if (tracing) wbist::util::TraceRegistry::global().start();
  if (!provenance_path.empty()) {
    try {
      wbist::util::provenance().open(provenance_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "wbist: %s\n", e.what());
      return 1;
    }
  }

  int rc;
  try {
    rc = dispatch(std::move(args));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wbist: %s\n", e.what());
    rc = 1;
  }
  wbist::util::provenance().close();
  if (tracing && rc != 2) {
    wbist::util::TraceRegistry::global().stop();
    // Surface ring-buffer overflow in the metrics document too, so a
    // --metrics-json consumer learns the trace is incomplete without
    // opening it (tools/trace_summary.py warns from the trace side).
    wbist::util::metrics()
        .counter("trace.spans_dropped")
        .add(wbist::util::TraceRegistry::global().dropped_events());
    // submit --observe clears the path after redirecting it to the
    // server-side observation; nothing more to write then.
    if (!g_trace_path.empty()) {
      try {
        wbist::util::TraceRegistry::global().write_json(g_trace_path);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "wbist: %s\n", e.what());
        if (rc == 0) rc = 1;
      }
    }
  }
  if (!g_metrics_path.empty() && rc != 2) {
    try {
      wbist::util::metrics().write_json(g_metrics_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "wbist: %s\n", e.what());
      if (rc == 0) rc = 1;
    }
  }
  return rc;
}
