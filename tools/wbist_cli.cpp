// wbist — command-line front end for the weighted-BIST library.
//
//   wbist list                          registry circuits
//   wbist info <circuit>                structure + fault counts
//   wbist emit <circuit> [out.bench]    write the netlist
//   wbist tgen <circuit> [out.seq]      deterministic sequence + compaction
//   wbist flow <circuit>                full method, Table-6 style row
//   wbist synth <circuit> [out.bench]   flow + Figure-1 generator emission
//   wbist obs <circuit>                 observation-point tradeoff table
//
// Every subcommand accepts these position-independent options (both
// `--flag path` and `--flag=path` forms, anywhere on the line):
//   --metrics-json <path>     dump the util::metrics registry (per-phase wall
//                             times, kernel/trace cycle counts, series) as JSON
//   --trace-json <path>       record a Chrome/Perfetto trace of the run
//                             (util::trace spans; load at ui.perfetto.dev)
//   --provenance-jsonl <path> stream per-fault detection provenance records
//   --vcd <path>              (tgen only) good-machine waveform of the final
//                             sequence, resolved against WBIST_OUT_DIR
// All four are observation-only: the command's results are bit-identical
// with and without them.
//
// Circuits may also be arbitrary `.bench` files: any argument containing
// '/' or ending in ".bench" is loaded from disk instead of the registry.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "circuits/registry.h"
#include "core/flow.h"
#include "core/generator_hw.h"
#include "core/obs_points.h"
#include "fault/fault_list.h"
#include "fault/fault_sim.h"
#include "netlist/bench_io.h"
#include "sim/good_sim.h"
#include "sim/kernel.h"
#include "sim/sequence_io.h"
#include "sim/vcd.h"
#include "tgen/compaction.h"
#include "tgen/random_tgen.h"
#include "util/cli_opts.h"
#include "util/metrics.h"
#include "util/out_dir.h"
#include "util/provenance.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/timer.h"
#include "util/trace.h"

namespace {

using namespace wbist;

/// Optional --vcd destination for `tgen`, stripped in main() like the other
/// position-independent options.
std::string g_vcd_path;

netlist::Netlist load_circuit(const std::string& name) {
  if (name.find('/') != std::string::npos ||
      (name.size() > 6 && name.substr(name.size() - 6) == ".bench"))
    return netlist::read_bench_file(name);
  return circuits::circuit_by_name(name);
}

int cmd_list() {
  util::Table t;
  t.header({"circuit", "PIs", "POs", "FFs", "gates", "kind"});
  for (const auto& info : circuits::known_circuits())
    t.row({info.name, std::to_string(info.profile.n_pi),
           std::to_string(info.profile.n_po),
           std::to_string(info.profile.n_ff),
           std::to_string(info.profile.n_gates),
           info.synthetic ? "synthetic analog" : "real ISCAS-89"});
  std::fputs(t.render().c_str(), stdout);
  return 0;
}

int cmd_info(const std::string& name) {
  const auto nl = load_circuit(name);
  const auto stats = nl.stats();
  const auto collapsed = fault::FaultSet::collapsed(nl);
  const auto uncollapsed = fault::FaultSet::uncollapsed(nl);
  std::printf("%s\n", nl.name().c_str());
  std::printf("  inputs:        %zu\n", stats.primary_inputs);
  std::printf("  outputs:       %zu\n", stats.primary_outputs);
  std::printf("  flip-flops:    %zu\n", stats.flip_flops);
  std::printf("  logic gates:   %zu\n", stats.logic_gates);
  std::printf("  lines:         %zu\n", stats.lines);
  std::printf("  logic depth:   %zu\n", stats.max_level);
  std::printf("  stuck-at faults: %zu uncollapsed, %zu collapsed\n",
              uncollapsed.size(), collapsed.size());
  return 0;
}

int cmd_emit(const std::string& name, const std::string& out) {
  const auto nl = load_circuit(name);
  netlist::write_bench_file(nl, out);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

int cmd_tgen(const std::string& name, const std::string& out) {
  const auto nl = load_circuit(name);
  const auto faults = fault::FaultSet::collapsed(nl);
  const fault::FaultSimulator sim(nl, faults);
  util::Timer timer;
  tgen::TgenConfig tc;
  const auto gen = tgen::generate_test_sequence(sim, tc);
  std::vector<fault::FaultId> must;
  for (fault::FaultId f = 0; f < faults.size(); ++f)
    if (gen.detection_time[f] != fault::DetectionResult::kUndetected)
      must.push_back(f);
  const auto comp = tgen::compact_sequence(sim, gen.sequence, must);
  std::printf("%s: %zu -> %zu vectors, %zu/%zu faults (%.1f%%), %.1fs\n",
              nl.name().c_str(), gen.sequence.length(),
              comp.sequence.length(), must.size(), faults.size(),
              100.0 * static_cast<double>(must.size()) /
                  static_cast<double>(faults.size()),
              timer.seconds());
  sim::write_sequence_file(comp.sequence, out,
                           nl.name() + " deterministic test sequence");
  std::printf("wrote %s\n", out.c_str());
  if (!g_vcd_path.empty()) {
    const std::string vcd_path = util::out_path(g_vcd_path);
    sim::GoodSimulator good(nl);
    sim::VcdWriter vcd(vcd_path, nl);
    for (std::size_t u = 0; u < comp.sequence.length(); ++u) {
      good.step(comp.sequence.row(u));
      vcd.sample(good);
    }
    std::printf("wrote %s\n", vcd_path.c_str());
  }
  return 0;
}

int cmd_flow(const std::string& name) {
  const auto nl = load_circuit(name);
  const auto faults = fault::FaultSet::collapsed(nl);
  const fault::FaultSimulator sim(nl, faults);
  util::Timer timer;
  const auto flow = core::run_flow(sim, nl.name());
  const auto& r = flow.table6;
  util::Table t;
  t.header({"circuit", "len", "det", "seq", "subs", "len", "num", "out",
            "f.e."});
  t.row({r.circuit, std::to_string(r.t_length), std::to_string(r.t_detected),
         std::to_string(r.n_seq), std::to_string(r.n_subs),
         std::to_string(r.max_len), std::to_string(r.n_fsms),
         std::to_string(r.n_fsm_outputs),
         util::fixed(100.0 * flow.procedure.fault_efficiency(), 1)});
  std::fputs(t.render().c_str(), stdout);
  std::printf("(%.1fs)\n", timer.seconds());
  return 0;
}

int cmd_synth(const std::string& name, const std::string& out) {
  const auto nl = load_circuit(name);
  const auto faults = fault::FaultSet::collapsed(nl);
  const fault::FaultSimulator sim(nl, faults);
  const auto flow = core::run_flow(sim, nl.name());
  if (flow.pruned.omega.empty()) {
    std::printf("no weight assignments selected\n");
    return 1;
  }
  const auto hw = core::build_generator(flow.pruned.omega,
                                        flow.procedure.sequence_length);
  netlist::write_bench_file(hw.netlist, out);
  const auto stats = hw.stats();
  std::printf("%s: %zu sessions x %zu cycles, %zu FSMs, %zu gates, %zu FFs\n",
              out.c_str(), hw.session_count, hw.session_length,
              hw.fsms.fsm_count(), stats.logic_gates, stats.flip_flops);
  return 0;
}

int cmd_obs(const std::string& name) {
  const auto nl = load_circuit(name);
  const auto faults = fault::FaultSet::collapsed(nl);
  const fault::FaultSimulator sim(nl, faults);
  const auto flow = core::run_flow(sim, nl.name());
  std::vector<fault::FaultId> targets;
  for (fault::FaultId f = 0; f < faults.size(); ++f)
    if (flow.detection_time[f] != fault::DetectionResult::kUndetected)
      targets.push_back(f);
  core::ObsTradeoffConfig cfg;
  cfg.sequence_length = flow.procedure.sequence_length;
  const auto result = core::observation_point_tradeoff(
      sim, flow.procedure.omega, targets, cfg);
  util::Table t;
  t.header({"seq", "sub", "len", "f.e.", "obs", "f.e."});
  for (const auto& row : result.rows)
    t.row({std::to_string(row.n_seq), std::to_string(row.n_subs),
           std::to_string(row.max_len), util::fixed(row.fe_before, 1),
           std::to_string(row.n_obs), util::fixed(row.fe_after, 1)});
  std::fputs(t.render().c_str(), stdout);
  return 0;
}

int usage() {
  std::fputs(
      "usage: wbist <command> [args] [--metrics-json <path>]\n"
      "             [--trace-json <path>] [--provenance-jsonl <path>]\n"
      "             [--kernel auto|generic|avx2]\n"
      "  list                         known circuits\n"
      "  info  <circuit>              structure and fault counts\n"
      "  emit  <circuit> [out.bench]  write the netlist\n"
      "  tgen  <circuit> [out.seq]    deterministic sequence + compaction\n"
      "                               (--vcd <path>: good-machine waveform)\n"
      "  flow  <circuit>              full weighted-BIST flow (Table-6 row)\n"
      "  synth <circuit> [out.bench]  emit the Figure-1 generator netlist\n"
      "  obs   <circuit>              observation-point tradeoff\n"
      "a circuit is a registry name (see `list`) or a .bench file path;\n"
      "--metrics-json dumps the run-metrics registry, --trace-json records a\n"
      "Chrome/Perfetto trace, --provenance-jsonl streams per-fault detection\n"
      "provenance (see EXPERIMENTS.md); --kernel pins the simulation\n"
      "backend (auto = widest this CPU supports; all are bit-identical)\n",
      stderr);
  return 2;
}

int dispatch(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const std::string& cmd = args[0];
  if (cmd == "list") return cmd_list();
  if (args.size() < 2) return usage();
  const std::string& name = args[1];
  const std::string arg3 = args.size() > 2 ? args[2] : "";
  if (cmd == "info") return cmd_info(name);
  if (cmd == "emit")
    return cmd_emit(name, arg3.empty() ? name + ".bench" : arg3);
  if (cmd == "tgen")
    return cmd_tgen(name, arg3.empty() ? name + ".seq" : arg3);
  if (cmd == "flow") return cmd_flow(name);
  if (cmd == "synth")
    return cmd_synth(name, arg3.empty() ? name + "_bist.bench" : arg3);
  if (cmd == "obs") return cmd_obs(name);
  return usage();
}

/// Strip one path-valued option via util::extract_option. Returns false
/// (after printing a usage error) when the flag is present without a value.
bool take_path_option(std::vector<std::string>& args, std::string_view flag,
                      std::string& value) {
  const util::ExtractResult r = util::extract_option(args, flag, value);
  if (r == util::ExtractResult::kMissingValue ||
      (r == util::ExtractResult::kFound && value.empty())) {
    std::fprintf(stderr, "wbist: %.*s needs a path\n",
                 static_cast<int>(flag.size()), flag.data());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the position-independent options before dispatch so positional
  // parsing never sees them.
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string metrics_path;
  std::string trace_path;
  std::string provenance_path;
  if (!take_path_option(args, "--metrics-json", metrics_path) ||
      !take_path_option(args, "--trace-json", trace_path) ||
      !take_path_option(args, "--provenance-jsonl", provenance_path) ||
      !take_path_option(args, "--vcd", g_vcd_path))
    return 2;

  // Backend override before any simulator is constructed. The resolved
  // backend (overridden or not) lands in the metrics labels so a
  // --metrics-json dump always records which kernel produced the run.
  std::string kernel_spec;
  if (!take_path_option(args, "--kernel", kernel_spec)) return 2;
  if (!kernel_spec.empty()) {
    try {
      wbist::sim::select_kernel(kernel_spec);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "wbist: %s\n", e.what());
      return 2;
    }
  }
  wbist::util::metrics().set_label("kernel.backend",
                                   wbist::sim::active_kernel().name);

  // Tracing and provenance start before any work so every span/detection of
  // the run is captured; both are observation-only (see util/trace.h).
  if (!trace_path.empty()) wbist::util::TraceRegistry::global().start();
  if (!provenance_path.empty()) {
    try {
      wbist::util::provenance().open(provenance_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "wbist: %s\n", e.what());
      return 1;
    }
  }

  int rc;
  try {
    rc = dispatch(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wbist: %s\n", e.what());
    rc = 1;
  }
  wbist::util::provenance().close();
  if (!trace_path.empty() && rc != 2) {
    wbist::util::TraceRegistry::global().stop();
    try {
      wbist::util::TraceRegistry::global().write_json(trace_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "wbist: %s\n", e.what());
      if (rc == 0) rc = 1;
    }
  }
  if (!metrics_path.empty() && rc != 2) {
    try {
      wbist::util::metrics().write_json(metrics_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "wbist: %s\n", e.what());
      if (rc == 0) rc = 1;
    }
  }
  return rc;
}
