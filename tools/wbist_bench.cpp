// wbist_bench — per-run procedure benchmark emitting the perf-trajectory
// record BENCH_procedure.json.
//
//   wbist_bench [--out <path>] [--circuits a,b,c] [--threads N] [--label S]
//               [--kernel auto|generic|avx2]
//               [--trace-json <path>] [--provenance-jsonl <path>]
//
// Runs the full weighted-BIST flow (tgen -> compaction -> procedure ->
// reverse-order pruning -> FSM synthesis) on each circuit and writes one
// stable-schema JSON record per circuit: results (fault efficiency, |T|,
// sessions, subsequences, FSMs), cost (wall seconds per phase, peak RSS,
// fault-simulation kernel/trace cycles) and the procedure's search
// statistics. Every PR appends a comparable point to the perf trajectory by
// re-running this binary; CI smoke-runs it on s27/s298 and validates the
// schema (see .github/workflows/ci.yml).
//
// Schema "wbist.bench.procedure/1": field names and meanings are frozen —
// extend by *adding* keys, never by renaming or repurposing existing ones.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "circuits/registry.h"
#include "core/flow.h"
#include "fault/fault_list.h"
#include "fault/fault_sim.h"
#include "sim/kernel.h"
#include "util/cli_opts.h"
#include "util/metrics.h"
#include "util/provenance.h"
#include "util/strings.h"
#include "util/timer.h"
#include "util/trace.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace {

using namespace wbist;

/// Process peak RSS in KiB (0 where unsupported). Monotone over the process
/// lifetime, so per-circuit values report the peak *up to* that circuit.
long peak_rss_kib() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return ru.ru_maxrss / 1024;  // bytes on macOS
#else
  return ru.ru_maxrss;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

struct CircuitRecord {
  std::string name;
  double wall_s = 0;
  long peak_rss_kib = 0;
  double fault_efficiency = 0;  // fraction of T's detected faults re-detected
  core::Table6Row row;
  core::ProcedureStats stats;
  std::size_t omega_before_prune = 0;
  std::uint64_t kernel_cycles = 0;
  std::uint64_t fault_cycles = 0;
  std::uint64_t trace_cycles = 0;
  std::size_t fault_list_size = 0;        // faults actually simulated
  std::size_t uncollapsed_faults = 0;     // full-universe size
  std::size_t uncollapsed_detected = 0;   // T's detection, expanded
  double uncollapsed_coverage = 0;
  double tgen_s = 0, compaction_s = 0, procedure_s = 0, reverse_sim_s = 0,
         fsm_synth_s = 0;
};

const char* collapse_name(fault::CollapseMode mode) {
  switch (mode) {
    case fault::CollapseMode::kNone:
      return "none";
    case fault::CollapseMode::kEquivalence:
      return "equivalence";
    case fault::CollapseMode::kDominance:
      return "dominance";
  }
  return "?";
}

CircuitRecord run_circuit(const std::string& name, unsigned threads,
                          fault::CollapseMode collapse) {
  util::MetricsRegistry& reg = util::metrics();
  reg.reset();  // per-circuit metrics window

  const netlist::Netlist nl = circuits::circuit_by_name(name);
  const fault::FaultSet faults = fault::FaultSet::collapsed(nl, collapse);
  const fault::FaultSimulator sim(nl, faults);

  core::FlowConfig config;
  config.procedure.threads = threads;

  const util::Timer wall;
  const core::FlowResult flow = core::run_flow(sim, name, config);

  CircuitRecord rec;
  rec.name = name;
  rec.wall_s = wall.seconds();
  rec.peak_rss_kib = peak_rss_kib();
  rec.fault_efficiency = flow.procedure.fault_efficiency();
  rec.row = flow.table6;
  rec.stats = flow.procedure.stats;
  rec.omega_before_prune = flow.procedure.omega.size();
  rec.kernel_cycles = reg.counter("fault_sim.kernel_cycles").value();
  rec.fault_cycles = reg.counter("fault_sim.fault_cycles").value();
  rec.trace_cycles = reg.counter("fault_sim.trace_cycles").value();
  rec.fault_list_size = faults.size();
  rec.uncollapsed_faults = flow.uncollapsed_total;
  rec.uncollapsed_detected = flow.uncollapsed_detected;
  rec.uncollapsed_coverage = flow.uncollapsed_coverage();
  rec.tgen_s = reg.timer("flow.tgen").seconds();
  rec.compaction_s = reg.timer("flow.compaction").seconds();
  rec.procedure_s = reg.timer("procedure").seconds();
  rec.reverse_sim_s = reg.timer("reverse_sim").seconds();
  rec.fsm_synth_s = reg.timer("flow.fsm_synth").seconds();
  return rec;
}

std::string render_json(const std::vector<CircuitRecord>& records,
                        unsigned threads, const std::string& label,
                        fault::CollapseMode collapse) {
  std::string out = "{\n  \"schema\": \"wbist.bench.procedure/1\",\n";
  out += "  \"label\": ";
  append_json_string(out, label);
  out += ",\n  \"threads\": " + std::to_string(threads) + ",\n";
  out += "  \"kernel\": ";
  append_json_string(out, sim::active_kernel().name);
  out += ",\n  \"kernel_words\": " +
         std::to_string(sim::active_kernel().words);
  out += ",\n  \"collapse\": ";
  append_json_string(out, collapse_name(collapse));
  out += ",\n";
  out += "  \"circuits\": [";
  char buf[64];
  for (std::size_t k = 0; k < records.size(); ++k) {
    const CircuitRecord& r = records[k];
    out += k == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    append_json_string(out, r.name);
    std::snprintf(buf, sizeof buf, ", \"wall_s\": %.6f", r.wall_s);
    out += buf;
    out += ", \"peak_rss_kib\": " + std::to_string(r.peak_rss_kib);
    std::snprintf(buf, sizeof buf, ", \"fault_efficiency\": %.6f",
                  r.fault_efficiency);
    out += buf;
    out += ",\n     \"t_length\": " + std::to_string(r.row.t_length);
    out += ", \"t_detected\": " + std::to_string(r.row.t_detected);
    out += ", \"sessions\": " + std::to_string(r.row.n_seq);
    out += ", \"sessions_before_prune\": " +
           std::to_string(r.omega_before_prune);
    out += ", \"subsequences\": " + std::to_string(r.row.n_subs);
    out += ", \"max_subsequence_len\": " + std::to_string(r.row.max_len);
    out += ", \"fsms\": " + std::to_string(r.row.n_fsms);
    out += ", \"fsm_outputs\": " + std::to_string(r.row.n_fsm_outputs);
    out += ",\n     \"assignments_tried\": " +
           std::to_string(r.stats.assignments_tried);
    out += ", \"sample_rejections\": " +
           std::to_string(r.stats.sample_rejections);
    out += ", \"full_simulations\": " +
           std::to_string(r.stats.full_simulations);
    out += ", \"good_machine_sims\": " +
           std::to_string(r.stats.good_machine_sims);
    out += ",\n     \"kernel_cycles\": " + std::to_string(r.kernel_cycles);
    out += ", \"fault_cycles\": " + std::to_string(r.fault_cycles);
    out += ", \"trace_cycles\": " + std::to_string(r.trace_cycles);
    out += ",\n     \"fault_list_size\": " +
           std::to_string(r.fault_list_size);
    out += ", \"uncollapsed_faults\": " +
           std::to_string(r.uncollapsed_faults);
    out += ", \"uncollapsed_detected\": " +
           std::to_string(r.uncollapsed_detected);
    std::snprintf(buf, sizeof buf, ", \"uncollapsed_coverage\": %.6f",
                  r.uncollapsed_coverage);
    out += buf;
    std::snprintf(buf, sizeof buf, ",\n     \"tgen_s\": %.6f", r.tgen_s);
    out += buf;
    std::snprintf(buf, sizeof buf, ", \"compaction_s\": %.6f",
                  r.compaction_s);
    out += buf;
    std::snprintf(buf, sizeof buf, ", \"procedure_s\": %.6f", r.procedure_s);
    out += buf;
    std::snprintf(buf, sizeof buf, ", \"reverse_sim_s\": %.6f",
                  r.reverse_sim_s);
    out += buf;
    std::snprintf(buf, sizeof buf, ", \"fsm_synth_s\": %.6f", r.fsm_synth_s);
    out += buf;
    out += "}";
  }
  out += records.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

int usage() {
  std::fputs(
      "usage: wbist_bench [--out <path>] [--circuits a,b,c] [--threads N]\n"
      "                   [--label <string>] [--collapse none|equivalence|"
      "dominance]\n"
      "                   [--kernel auto|generic|avx2]\n"
      "                   [--trace-json <path>] [--provenance-jsonl <path>]\n"
      "runs the full flow per circuit and writes BENCH_procedure.json\n"
      "(schema wbist.bench.procedure/1); default circuits are the fast\n"
      "Table-6 subset, default out is BENCH_procedure.json;\n"
      "--kernel pins the simulation backend (all are bit-identical),\n"
      "--trace-json records a Chrome/Perfetto trace of the whole run,\n"
      "--provenance-jsonl streams per-fault detection provenance\n",
      stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_procedure.json";
  std::string label = "procedure";
  // Fast Table-6 subset: every circuit that finishes in roughly a second,
  // so the default run stays a smoke-sized probe. Larger circuits (s641,
  // s1423, s5378, ...) are opt-in via --circuits.
  std::string circuits_arg = "s27,s208,s298,s344,s382,s386,s400,s444,s526";
  unsigned threads = 0;
  fault::CollapseMode collapse = fault::CollapseMode::kEquivalence;

  // Position-independent observability options, stripped before the
  // flag loop below (shared helper with the wbist front end).
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string trace_path;
  std::string provenance_path;
  if (util::extract_option(args, "--trace-json", trace_path) ==
          util::ExtractResult::kMissingValue ||
      util::extract_option(args, "--provenance-jsonl", provenance_path) ==
          util::ExtractResult::kMissingValue) {
    std::fprintf(stderr,
                 "wbist_bench: --trace-json / --provenance-jsonl need a "
                 "path\n");
    return 2;
  }

  // Backend override, applied before any simulator is constructed; the
  // resolved name lands in the record's "kernel" field either way.
  std::string kernel_spec;
  if (util::extract_option(args, "--kernel", kernel_spec) ==
      util::ExtractResult::kMissingValue) {
    std::fprintf(stderr, "wbist_bench: --kernel needs a value\n");
    return 2;
  }
  if (!kernel_spec.empty()) {
    try {
      sim::select_kernel(kernel_spec);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "wbist_bench: %s\n", e.what());
      return 2;
    }
  }

  for (std::size_t i = 0; i < args.size(); ++i) {
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "wbist_bench: %s needs a value\n", flag);
        return nullptr;
      }
      return args[++i].c_str();
    };
    if (args[i] == "--out") {
      const char* v = need_value("--out");
      if (v == nullptr) return 2;
      out_path = v;
    } else if (args[i] == "--circuits") {
      const char* v = need_value("--circuits");
      if (v == nullptr) return 2;
      circuits_arg = v;
    } else if (args[i] == "--threads") {
      const char* v = need_value("--threads");
      if (v == nullptr) return 2;
      threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (args[i] == "--label") {
      const char* v = need_value("--label");
      if (v == nullptr) return 2;
      label = v;
    } else if (args[i] == "--collapse") {
      const char* v = need_value("--collapse");
      if (v == nullptr) return 2;
      if (std::strcmp(v, "none") == 0) {
        collapse = fault::CollapseMode::kNone;
      } else if (std::strcmp(v, "equivalence") == 0) {
        collapse = fault::CollapseMode::kEquivalence;
      } else if (std::strcmp(v, "dominance") == 0) {
        collapse = fault::CollapseMode::kDominance;
      } else {
        return usage();
      }
    } else {
      return usage();
    }
  }

  if (!trace_path.empty()) util::TraceRegistry::global().start();
  if (!provenance_path.empty()) {
    try {
      util::provenance().open(provenance_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "wbist_bench: %s\n", e.what());
      return 1;
    }
  }

  std::vector<std::string> names;
  for (const std::string_view part : util::split(circuits_arg, ','))
    if (!part.empty()) names.emplace_back(part);
  if (names.empty()) return usage();

  std::vector<CircuitRecord> records;
  try {
    for (const std::string& name : names) {
      std::printf("%s ...\n", name.c_str());
      std::fflush(stdout);
      records.push_back(run_circuit(name, threads, collapse));
      const CircuitRecord& r = records.back();
      std::printf(
          "%s: f.e. %.1f%%, %zu sessions, %.2fs "
          "(tgen %.2f, procedure %.2f), peak RSS %ld KiB\n",
          r.name.c_str(), 100.0 * r.fault_efficiency, r.row.n_seq, r.wall_s,
          r.tgen_s, r.procedure_s, r.peak_rss_kib);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wbist_bench: %s\n", e.what());
    return 1;
  }

  const std::string json = render_json(records, threads, label, collapse);
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "wbist_bench: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s (%zu circuits)\n", out_path.c_str(), records.size());

  util::provenance().close();
  if (!trace_path.empty()) {
    util::TraceRegistry::global().stop();
    try {
      util::TraceRegistry::global().write_json(trace_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "wbist_bench: %s\n", e.what());
      return 1;
    }
  }
  return 0;
}
