// wbist_fuzz — seed-driven differential fuzzing of the simulation stack.
//
//   wbist_fuzz <campaign|all> [--seed N] [--runs N] [--artifact-dir DIR]
//                             [--max-failures N] [--verbose]
//
// Campaigns (see DESIGN.md §8, "Differential oracles & fuzzing"):
//   sim-diff   random synthetic circuits x random 0/1/X sequences: the
//              word-parallel FaultSimulator (run / run(GoodTrace) /
//              observe_final / observable_lines, serial and threaded) must
//              agree exactly with the naive scalar RefSimulator oracle, for
//              every compiled-in evaluation kernel backend (generic widths
//              and AVX2 when available).
//   parser     mutated `.bench` text must parse-or-throw (never crash), and
//              parsed text must reach a write/read fixpoint.
//   pipeline   the full flow on random small circuits must reach 100% fault
//              efficiency w.r.t. T, reverse-order pruning must not lose
//              coverage, and the emitted Figure-1 generator netlist must be
//              cycle-equivalent to the software expansion of Ω.
//
// Every failing case dumps replayable artifacts; re-run a single case with
// `wbist_fuzz <campaign> --seed <case_seed> --runs 1`.
// Exit codes: 0 all campaigns clean, 1 failures found, 2 usage error.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_set>
#include <vector>

#include "circuits/synth_gen.h"
#include "core/flow.h"
#include "core/generator_hw.h"
#include "fault/fault_list.h"
#include "fault/fault_sim.h"
#include "netlist/bench_io.h"
#include "sim/good_sim.h"
#include "sim/kernel.h"
#include "sim/ref_sim.h"
#include "sim/sequence_io.h"
#include "util/fuzz.h"
#include "util/timer.h"

namespace {

using namespace wbist;
using netlist::NodeId;
using sim::Val3;
using util::FuzzCase;
using util::Rng;

// ---------------------------------------------------------------------------
// Shared generators
// ---------------------------------------------------------------------------

circuits::SynthProfile random_profile(Rng& rng, std::size_t max_extra_gates) {
  circuits::SynthProfile p;
  p.name = "fuzz";
  p.n_pi = 1 + rng.below(6);
  p.n_po = 1 + rng.below(4);
  p.n_ff = rng.below(6);
  p.n_gates = p.n_ff + 3 + rng.below(max_extra_gates);
  p.seed = rng.next_u64();
  return p;
}

/// Random three-valued sequence; roughly one case in three is fully binary
/// (the regime the procedure runs in), the rest carry 10-40% X values.
sim::TestSequence random_sequence(Rng& rng, std::size_t width,
                                  std::size_t length) {
  const std::uint64_t x_pct = rng.below(3) == 0 ? 0 : 10 + rng.below(31);
  sim::TestSequence seq(length, width);
  for (std::size_t u = 0; u < length; ++u)
    for (std::size_t i = 0; i < width; ++i) {
      if (rng.below(100) < x_pct)
        seq.set(u, i, Val3::kX);
      else
        seq.set(u, i, rng.next_bit() ? Val3::kOne : Val3::kZero);
    }
  return seq;
}

std::string nodes_to_string(const netlist::Netlist& nl,
                            std::span<const NodeId> nodes) {
  std::string s;
  for (const NodeId n : nodes) {
    if (!s.empty()) s += ", ";
    s += nl.node(n).name;
  }
  return s.empty() ? "(none)" : s;
}

// ---------------------------------------------------------------------------
// Campaign: sim-diff
// ---------------------------------------------------------------------------

void check_detection(FuzzCase& fc, const netlist::Netlist& nl,
                     const fault::FaultSet& faults,
                     std::span<const fault::FaultId> ids,
                     std::span<const std::int32_t> want,
                     const fault::DetectionResult& got,
                     const std::string& label) {
  std::size_t want_detected = 0;
  for (std::size_t k = 0; k < ids.size(); ++k) {
    if (want[k] != -1) ++want_detected;
    if (got.detection_time[k] != want[k])
      fc.fail(label + ": fault " + fault_name(nl, faults[ids[k]]) +
              " detection time " + std::to_string(got.detection_time[k]) +
              ", oracle says " + std::to_string(want[k]));
  }
  if (got.detected_count != want_detected)
    fc.fail(label + ": detected_count " + std::to_string(got.detected_count) +
            ", oracle says " + std::to_string(want_detected));
}

void campaign_sim_diff(FuzzCase& fc) {
  Rng& rng = fc.rng();
  const circuits::SynthProfile profile = random_profile(rng, 36);
  const netlist::Netlist nl = circuits::generate_circuit(profile);
  fc.stash("circuit.bench", netlist::write_bench(nl));

  const bool collapsed = rng.next_bit();
  const fault::FaultSet faults = collapsed
                                     ? fault::FaultSet::collapsed(nl)
                                     : fault::FaultSet::uncollapsed(nl);
  const std::vector<fault::FaultId> ids = faults.all_ids();

  // Mostly short sequences; roughly one case in six runs long enough to
  // cross the fault simulator's segment boundary (64 cycles), so mid-run
  // repacking of surviving fault groups is exercised against the oracle.
  const std::size_t length =
      rng.below(6) == 0 ? 65 + rng.below(96) : 1 + rng.below(24);
  const sim::TestSequence seq =
      random_sequence(rng, nl.primary_inputs().size(), length);
  fc.stash("sequence.seq", sim::write_sequence(seq, "sim-diff input"));

  // Randomize the four performance levers: every combination must stay
  // bit-identical to the scalar oracle (the all-on default is one of the
  // 16 combinations and other suites pin it explicitly).
  const bool lever_cones = rng.next_bit();
  const bool lever_gating = rng.next_bit();
  const bool lever_dropping = rng.next_bit();
  const bool lever_packing = rng.next_bit();

  // Occasionally observe extra lines and/or truncate the simulated window.
  std::vector<NodeId> obs;
  for (std::size_t k = rng.below(3); k > 0; --k)
    obs.push_back(static_cast<NodeId>(rng.below(nl.node_count())));
  std::sort(obs.begin(), obs.end());
  obs.erase(std::unique(obs.begin(), obs.end()), obs.end());
  const std::size_t max_time =
      rng.below(4) == 0 ? 1 + rng.below(length) : length;
  fc.stash("setup.txt",
           "faults: " + std::to_string(ids.size()) +
               (collapsed ? " (collapsed)\n" : " (uncollapsed)\n") +
               "observation points: " + nodes_to_string(nl, obs) + "\n" +
               "max_time_units: " + std::to_string(max_time) + "\n" +
               "levers: cones=" + std::to_string(lever_cones) +
               " gating=" + std::to_string(lever_gating) +
               " dropping=" + std::to_string(lever_dropping) +
               " packing=" + std::to_string(lever_packing) + "\n");

  // Oracle: one scalar single-fault simulation per fault over the effective
  // window.
  sim::TestSequence eff = seq;
  eff.truncate(max_time);
  const sim::RefSimulator ref(nl);
  const sim::RefValueMatrix good = ref.run(eff);
  std::vector<NodeId> observed(nl.primary_outputs().begin(),
                               nl.primary_outputs().end());
  observed.insert(observed.end(), obs.begin(), obs.end());

  std::vector<NodeId> probes;
  for (std::size_t k = 1 + rng.below(5); k > 0; --k)
    probes.push_back(static_cast<NodeId>(rng.below(nl.node_count())));

  std::vector<std::int32_t> want_det(ids.size());
  std::vector<std::vector<NodeId>> want_lines(ids.size());
  std::vector<std::vector<Val3>> want_final(ids.size());
  for (std::size_t k = 0; k < ids.size(); ++k) {
    const fault::Fault& f = faults[ids[k]];
    const sim::RefFault rf{f.node, f.pin, f.stuck_at_one};
    const sim::RefValueMatrix faulty = ref.run(eff, rf);
    want_det[k] = sim::ref_detection_time(good, faulty, observed);
    want_lines[k] = sim::ref_observable_lines(good, faulty);
    want_final[k].reserve(probes.size());
    for (const NodeId n : probes) want_final[k].push_back(faulty.back()[n]);
  }

  // Draw all random decisions before the backend loop so a replayed seed
  // behaves identically regardless of which kernels this build compiled in.
  const unsigned n_threads = 2 + static_cast<unsigned>(rng.below(6));

  // Every compiled-in evaluation kernel must agree with the scalar oracle:
  // serial, threaded, and trace-based runs, plus line/final observation.
  for (const sim::Kernel& kernel : sim::kernels()) {
    const std::string tag = std::string("[") + kernel.name + "]";
    const fault::FaultSimulator fsim(nl, faults, &kernel);

    fault::FaultSimOptions opts;
    opts.observation_points = obs;
    opts.max_time_units = max_time;
    opts.cone_restriction = lever_cones;
    opts.activity_gating = lever_gating;
    opts.fault_dropping = lever_dropping;
    opts.locality_packing = lever_packing;
    opts.threads = 1;
    check_detection(fc, nl, faults, ids, want_det, fsim.run(seq, ids, opts),
                    tag + "run[threads=1]");
    opts.threads = n_threads;
    check_detection(fc, nl, faults, ids, want_det, fsim.run(seq, ids, opts),
                    tag + "run[threads=" + std::to_string(n_threads) + "]");
    const fault::GoodTrace trace = fsim.make_trace(seq, obs, max_time);
    check_detection(fc, nl, faults, ids, want_det, fsim.run(trace, ids, opts),
                    tag + "run[GoodTrace]");

    // observable_lines and observe_final only see the full window; skip them
    // when this case exercises max_time_units truncation.
    if (max_time != length) continue;

    const auto check_lines = [&](const std::vector<std::vector<NodeId>>& got,
                                 const std::string& label) {
      for (std::size_t k = 0; k < ids.size(); ++k)
        if (got[k] != want_lines[k])
          fc.fail(label + ": fault " + fault_name(nl, faults[ids[k]]) +
                  " observable lines {" + nodes_to_string(nl, got[k]) +
                  "}, oracle says {" + nodes_to_string(nl, want_lines[k]) +
                  "}");
    };
    check_lines(fsim.observable_lines(seq, ids, 1),
                tag + "observable_lines[1]");
    check_lines(fsim.observable_lines(fsim.make_trace(seq), ids, n_threads),
                tag + "observable_lines[trace," + std::to_string(n_threads) +
                    "]");

    const auto check_final = [&](const std::vector<std::vector<Val3>>& got,
                                 const std::string& label) {
      for (std::size_t k = 0; k < ids.size(); ++k)
        for (std::size_t n = 0; n < probes.size(); ++n)
          if (got[k][n] != want_final[k][n])
            fc.fail(label + ": fault " + fault_name(nl, faults[ids[k]]) +
                    " final value at " + nl.node(probes[n]).name + " is '" +
                    sim::to_char(got[k][n]) + "', oracle says '" +
                    sim::to_char(want_final[k][n]) + "'");
    };
    check_final(fsim.observe_final(seq, ids, probes, 1),
                tag + "observe_final[1]");
    check_final(fsim.observe_final(seq, ids, probes, n_threads),
                tag + "observe_final[" + std::to_string(n_threads) + "]");
  }
}

// ---------------------------------------------------------------------------
// Campaign: parser
// ---------------------------------------------------------------------------

void mutate_text(Rng& rng, std::string& text) {
  static constexpr char kAlphabet[] =
      "()=,# \t\nabcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
      "0123456789_INPUTOUTPUTDFFANDNORXBUF";
  const auto lines = [&text]() {
    std::vector<std::pair<std::size_t, std::size_t>> spans;
    std::size_t start = 0;
    while (start <= text.size()) {
      std::size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      spans.emplace_back(start, end - start);
      start = end + 1;
    }
    return spans;
  };
  switch (rng.below(8)) {
    case 0:  // delete one character
      if (!text.empty()) text.erase(rng.below(text.size()), 1);
      break;
    case 1:  // insert one character
      text.insert(text.begin() + static_cast<std::ptrdiff_t>(
                                     rng.below(text.size() + 1)),
                  kAlphabet[rng.below(sizeof(kAlphabet) - 1)]);
      break;
    case 2:  // overwrite one character
      if (!text.empty())
        text[rng.below(text.size())] = kAlphabet[rng.below(sizeof(kAlphabet) - 1)];
      break;
    case 3: {  // duplicate a line (duplicate definitions / declarations)
      const auto spans = lines();
      const auto [start, len] = spans[rng.below(spans.size())];
      text += "\n" + text.substr(start, len);
      break;
    }
    case 4: {  // delete a line (undefined signals)
      const auto spans = lines();
      const auto [start, len] = spans[rng.below(spans.size())];
      text.erase(start, std::min(len + 1, text.size() - start));
      break;
    }
    case 5: {  // swap two lines (forward references, reordering)
      const auto spans = lines();
      const auto a = spans[rng.below(spans.size())];
      const auto b = spans[rng.below(spans.size())];
      const std::string sa = text.substr(a.first, a.second);
      const std::string sb = text.substr(b.first, b.second);
      if (a.first < b.first) {
        text.replace(b.first, b.second, sa);
        text.replace(a.first, a.second, sb);
      } else {
        text.replace(a.first, a.second, sb);
        text.replace(b.first, b.second, sa);
      }
      break;
    }
    case 6:  // truncate (unterminated constructs)
      text.erase(rng.below(text.size() + 1));
      break;
    case 7: {  // rewrite a fanin reference into a self-reference
      const std::size_t open = text.find('(', rng.below(text.size() + 1));
      if (open != std::string::npos && open > 0) {
        std::size_t eq = text.rfind('=', open);
        const std::size_t nl_pos = text.rfind('\n', open);
        if (eq != std::string::npos &&
            (nl_pos == std::string::npos || eq > nl_pos)) {
          const std::size_t name_start =
              nl_pos == std::string::npos ? 0 : nl_pos + 1;
          const std::string name =
              text.substr(name_start, eq - name_start);
          const std::size_t close = text.find(')', open);
          if (close != std::string::npos)
            text.replace(open + 1, close - open - 1, name);
        }
      }
      break;
    }
  }
}

void campaign_parser(FuzzCase& fc) {
  Rng& rng = fc.rng();
  circuits::SynthProfile p = random_profile(rng, 20);
  std::string text = netlist::write_bench(circuits::generate_circuit(p));
  if (rng.below(8) == 0) {
    // Splice a second circuit in: guaranteed duplicate definitions.
    p.seed = rng.next_u64();
    text += netlist::write_bench(circuits::generate_circuit(p));
  }
  const std::size_t n_mutations = rng.below(6);  // 0 = clean round trip
  for (std::size_t k = 0; k < n_mutations; ++k) mutate_text(rng, text);
  fc.stash("input.bench", text);

  netlist::Netlist nl;
  try {
    nl = netlist::read_bench(text, "fuzz");
  } catch (const std::exception&) {
    return;  // parse-or-throw: a clean error is a pass; a crash kills us
  }

  // Print-parse fixpoint: the printer's output must re-parse, and printing
  // the re-parse must reproduce it byte for byte.
  const std::string once = netlist::write_bench(nl);
  fc.stash("printed.bench", once);
  netlist::Netlist nl2;
  try {
    nl2 = netlist::read_bench(once, "fuzz");
  } catch (const std::exception& e) {
    fc.fail(std::string("printer output failed to re-parse: ") + e.what());
  }
  const std::string twice = netlist::write_bench(nl2);
  if (once != twice) {
    fc.stash("reprinted.bench", twice);
    fc.fail("write_bench(read_bench(x)) is not a fixpoint");
  }
  if (nl2.node_count() != nl.node_count() ||
      nl2.primary_inputs().size() != nl.primary_inputs().size() ||
      nl2.primary_outputs().size() != nl.primary_outputs().size() ||
      nl2.flip_flops().size() != nl.flip_flops().size() ||
      nl2.eval_order().size() != nl.eval_order().size())
    fc.fail("round-tripped netlist differs structurally from the original");
}

// ---------------------------------------------------------------------------
// Campaign: pipeline
// ---------------------------------------------------------------------------

void campaign_pipeline(FuzzCase& fc) {
  Rng& rng = fc.rng();
  circuits::SynthProfile p;
  p.name = "fuzz";
  p.n_pi = 2 + rng.below(4);
  p.n_po = 1 + rng.below(3);
  p.n_ff = 1 + rng.below(4);
  p.n_gates = p.n_ff + 4 + rng.below(16);
  p.seed = rng.next_u64();
  const netlist::Netlist nl = circuits::generate_circuit(p);
  fc.stash("circuit.bench", netlist::write_bench(nl));

  const fault::FaultSet faults = fault::FaultSet::collapsed(nl);
  const fault::FaultSimulator fsim(nl, faults);

  core::FlowConfig cfg;
  cfg.tgen.max_length = 192;
  cfg.tgen.chunk = 32;
  cfg.tgen.max_stalls = 8;
  cfg.tgen.seed = rng.next_u64();
  cfg.compact = rng.next_bit();
  cfg.compaction.max_simulations = 200;
  cfg.procedure.sequence_length = 48;
  static constexpr std::size_t kSampleSizes[] = {0, 2, 8, 32};
  cfg.procedure.sample_size = kSampleSizes[rng.below(4)];
  cfg.procedure.seed = rng.next_u64();
  cfg.procedure.threads = rng.next_bit() ? 4 : 1;

  const core::FlowResult flow = core::run_flow(fsim, "fuzz", cfg);
  fc.stash("sequence.seq",
           sim::write_sequence(flow.sequence, "deterministic T"));

  // 1. The procedure must reach 100% fault efficiency w.r.t. T. T is fully
  // specified (tgen emits binary vectors), so no target may be abandoned.
  if (flow.procedure.abandoned_count != 0)
    fc.fail("procedure abandoned " +
            std::to_string(flow.procedure.abandoned_count) + " targets");
  if (flow.procedure.detected_count != flow.procedure.target_count)
    fc.fail("fault efficiency " +
            std::to_string(flow.procedure.detected_count) + "/" +
            std::to_string(flow.procedure.target_count) + " < 100%");

  // 2. Reverse-order pruning must preserve coverage of every target.
  std::unordered_set<fault::FaultId> kept(flow.pruned.detected.begin(),
                                          flow.pruned.detected.end());
  for (fault::FaultId f = 0; f < flow.detection_time.size(); ++f)
    if (flow.detection_time[f] != fault::DetectionResult::kUndetected &&
        kept.count(f) == 0)
      fc.fail("reverse_order_prune lost coverage of fault " +
              fault_name(nl, faults[f]));

  // 3. The emitted Figure-1 generator netlist must stream exactly the
  // software expansion of every surviving assignment, session by session.
  if (flow.pruned.omega.empty()) return;
  const core::GeneratorHardware hw =
      core::build_generator(flow.pruned.omega, flow.procedure.sequence_length);
  fc.stash("generator.bench", netlist::write_bench(hw.netlist));
  sim::GoodSimulator gen_sim(hw.netlist);
  gen_sim.step(std::vector<Val3>{Val3::kOne});  // reset pulse
  for (std::size_t j = 0; j < flow.pruned.omega.size(); ++j) {
    const sim::TestSequence expect =
        flow.pruned.omega[j].expand(hw.session_length);
    for (std::size_t u = 0; u < hw.session_length; ++u) {
      gen_sim.step(std::vector<Val3>{Val3::kZero});
      const std::vector<Val3> out = gen_sim.outputs();
      for (std::size_t i = 0; i < out.size(); ++i)
        if (out[i] != expect.at(u, i))
          fc.fail("generator output TG" + std::to_string(i) + " session " +
                  std::to_string(j) + " cycle " + std::to_string(u) +
                  " is '" + sim::to_char(out[i]) + "', expansion says '" +
                  sim::to_char(expect.at(u, i)) + "'");
    }
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

struct Campaign {
  const char* name;
  void (*body)(FuzzCase&);
};

constexpr Campaign kCampaigns[] = {
    {"sim-diff", campaign_sim_diff},
    {"parser", campaign_parser},
    {"pipeline", campaign_pipeline},
};

int usage() {
  std::fputs(
      "usage: wbist_fuzz <campaign|all> [options]\n"
      "campaigns: sim-diff | parser | pipeline | all\n"
      "options:\n"
      "  --seed N          campaign seed (default 1)\n"
      "  --runs N          cases per campaign (default 100)\n"
      "  --artifact-dir D  failure dump directory (default fuzz-artifacts)\n"
      "  --max-failures N  stop a campaign after N failures (default 1)\n"
      "  --verbose         per-run progress on stderr\n"
      "replay a failure:  wbist_fuzz <campaign> --seed <case_seed> --runs 1\n",
      stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string which = argv[1];

  util::FuzzOptions options;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seed") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--runs") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.runs = std::strtoull(v, nullptr, 10);
    } else if (arg == "--artifact-dir") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.artifact_dir = v;
    } else if (arg == "--max-failures") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.max_failures = std::strtoull(v, nullptr, 10);
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else {
      return usage();
    }
  }
  if (options.max_failures == 0) options.max_failures = 1;

  std::vector<Campaign> selected;
  for (const Campaign& c : kCampaigns)
    if (which == "all" || which == c.name) selected.push_back(c);
  if (selected.empty()) return usage();

  bool ok = true;
  for (const Campaign& c : selected) {
    util::Timer timer;
    const util::FuzzReport report = util::run_campaign(c.name, options,
                                                       c.body);
    std::printf("[%s] %zu runs, %zu failures (%.1fs)\n", c.name,
                report.runs_executed, report.failures.size(),
                timer.seconds());
    ok = ok && report.ok();
  }
  return ok ? 0 : 1;
}
