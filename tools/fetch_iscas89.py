#!/usr/bin/env python3
"""Fetch the large ISCAS-89 benchmark netlists and pin their checksums.

Usage:
  tools/fetch_iscas89.py --dest bench_data                 # fetch + verify
  tools/fetch_iscas89.py --dest bench_data --pin           # record new pins
  tools/fetch_iscas89.py --dest bench_data --verify-only   # offline check

Downloads the real `.bench` files for the large ISCAS-89 set (s9234,
s13207, s15850, s35932, s38417) from a list of public mirrors, verifies
each file two ways, and leaves them under --dest where `wbist` picks them
up via WBIST_BENCH_DIR:

  1. Structural pins (authoritative, from the published benchmark tables):
     the INPUT/OUTPUT/DFF counts parsed out of the fetched text must match
     exactly. A mirror serving a renamed or re-synthesized variant fails
     here no matter what its checksum says.
  2. SHA-256 pins, trust-on-first-use: the first successful fetch records
     the digest in tools/iscas89.lock (run with --pin to write it); later
     fetches must reproduce it bit for bit. The lockfile ships empty pins
     for files never fetched — this script never fabricates a digest.

--verify-only skips the network entirely and re-checks files already in
--dest against both pin kinds, so CI can gate on a warm cache offline.

Stdlib only — no third-party dependencies. Exit codes: 0 all requested
circuits present and verified, 1 fetch/verification failure, 2 usage.
"""

import argparse
import hashlib
import json
import os
import re
import sys
import urllib.error
import urllib.request

LOCKFILE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "iscas89.lock")

# Published structural sizes: name -> (PIs, POs, DFFs). Gate counts vary
# by how a mirror counts inverters/buffers, so they are advisory only.
STRUCTURE = {
    "s9234": (36, 39, 211),
    "s13207": (62, 152, 638),
    "s15850": (77, 150, 534),
    "s35932": (35, 320, 1728),
    "s38417": (28, 106, 1636),
}

# Mirrors are tried in order; {name} is substituted per circuit.
MIRRORS = [
    "https://raw.githubusercontent.com/santoshsmalagi/Benchmarks/master/"
    "ISCAS89/{name}.bench",
    "https://raw.githubusercontent.com/jpsety/verilog_benchmark_circuits/"
    "master/{name}.bench",
    "https://ddd.fit.cvut.cz/prj/Benchmarks/ISCAS89/{name}.bench",
]

TIMEOUT_S = 30


def load_lock():
    if not os.path.exists(LOCKFILE):
        return {}
    with open(LOCKFILE, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "wbist.iscas89-lock/1":
        sys.exit(f"fetch_iscas89: unexpected lockfile schema "
                 f"{doc.get('schema')!r}")
    return doc.get("sha256", {})


def save_lock(pins):
    doc = {"schema": "wbist.iscas89-lock/1", "sha256": dict(sorted(pins.items()))}
    with open(LOCKFILE, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")


def parse_structure(text):
    """Count INPUT/OUTPUT declarations and DFF assignments in bench text."""
    pis = len(re.findall(r"(?im)^\s*INPUT\s*\(", text))
    pos = len(re.findall(r"(?im)^\s*OUTPUT\s*\(", text))
    ffs = len(re.findall(r"(?im)=\s*DFF\s*\(", text))
    return pis, pos, ffs


def verify(name, data, pins, pin_mode):
    """Return an error string, or None when `data` passes both pin kinds."""
    try:
        text = data.decode("utf-8", errors="strict")
    except UnicodeDecodeError:
        return "not valid UTF-8 text"
    got = parse_structure(text)
    want = STRUCTURE[name]
    if got != want:
        return (f"structural mismatch: got PI/PO/FF {got}, "
                f"published {want}")
    digest = hashlib.sha256(data).hexdigest()
    pinned = pins.get(name)
    if pinned:
        if digest != pinned:
            return (f"sha256 mismatch: got {digest}, pinned {pinned} "
                    f"(mirror content changed; re-run with --pin only if "
                    f"the change is expected)")
    elif pin_mode:
        pins[name] = digest
        print(f"  pinned sha256 {digest[:16]}…")
    else:
        print(f"  warning: no sha256 pin for {name} yet "
              f"(run with --pin to record {digest[:16]}…)", file=sys.stderr)
    return None


def fetch(name):
    """Try every mirror; return bench file bytes or raise RuntimeError."""
    errors = []
    for mirror in MIRRORS:
        url = mirror.format(name=name)
        try:
            with urllib.request.urlopen(url, timeout=TIMEOUT_S) as resp:
                return resp.read()
        except (urllib.error.URLError, OSError, ValueError) as e:
            errors.append(f"    {url}: {e}")
    raise RuntimeError("all mirrors failed:\n" + "\n".join(errors))


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--dest", required=True,
                    help="directory for the fetched .bench files "
                         "(use as WBIST_BENCH_DIR)")
    ap.add_argument("--circuits", nargs="*", default=sorted(STRUCTURE),
                    help="subset of circuits (default: all five)")
    ap.add_argument("--pin", action="store_true",
                    help="record sha256 pins for newly fetched files")
    ap.add_argument("--verify-only", action="store_true",
                    help="no network: verify files already in --dest")
    args = ap.parse_args()

    for name in args.circuits:
        if name not in STRUCTURE:
            ap.error(f"unknown circuit {name!r} "
                     f"(known: {', '.join(sorted(STRUCTURE))})")

    os.makedirs(args.dest, exist_ok=True)
    pins = load_lock()
    failures = 0
    for name in args.circuits:
        path = os.path.join(args.dest, f"{name}.bench")
        data = None
        if os.path.exists(path):
            with open(path, "rb") as f:
                data = f.read()
            source = "cached"
        elif args.verify_only:
            print(f"{name}: MISSING ({path})", file=sys.stderr)
            failures += 1
            continue
        else:
            print(f"{name}: fetching…")
            try:
                data = fetch(name)
            except RuntimeError as e:
                print(f"{name}: FAILED\n{e}", file=sys.stderr)
                failures += 1
                continue
            source = "fetched"
        err = verify(name, data, pins, args.pin)
        if err:
            print(f"{name}: FAILED ({source}): {err}", file=sys.stderr)
            if source == "fetched":
                # Never leave an unverified file where WBIST_BENCH_DIR
                # would pick it up.
                pass
            else:
                os.rename(path, path + ".rejected")
                print(f"  moved aside to {path}.rejected", file=sys.stderr)
            failures += 1
            continue
        if source == "fetched":
            with open(path, "wb") as f:
                f.write(data)
        print(f"{name}: ok ({source}, {len(data)} bytes)")

    if args.pin:
        save_lock(pins)
        print(f"pins written to {LOCKFILE}")
    if failures:
        print(f"fetch_iscas89: {failures} circuit(s) failed", file=sys.stderr)
        return 1
    print(f"all circuits verified; export WBIST_BENCH_DIR={args.dest}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
