#!/usr/bin/env python3
"""Fold wbist --trace-json files into per-phase / per-thread tables.

Usage:
  tools/trace_summary.py trace.json              # per-span-name summary
  tools/trace_summary.py trace.json --by-tid     # add a per-thread breakdown
  tools/trace_summary.py w1.json w2.json --merge merged.json
                                                 # stitch a cross-process
                                                 # timeline (campaign workers)

Reads the Chrome/Perfetto trace_event JSON written by `wbist --trace-json`
or `wbist_bench --trace-json` (schema wbist.trace/1) and prints, per span
name: event count, total wall time, mean and max duration. With --by-tid,
"worker" spans (fault_sim.group, worker_pool.drain) are additionally broken
down per thread id, which makes rank imbalance visible at a glance.

Multiple inputs are folded into one summary, each input re-stamped with a
distinct pid so per-process timelines never collide — the shape produced by
`wbist campaign --worker-trace-dir`, whose campaign.shard spans carry the
campaign id and shard number. --merge additionally writes the stitched
document (one process per input file, process_name metadata naming the
source) so the whole campaign loads as one Perfetto timeline.

Stdlib only — no third-party dependencies.
"""

import argparse
import json
import os
import sys
from collections import defaultdict


def load_events(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") not in (None, "wbist.trace/1"):
        sys.exit(f"trace_summary: unexpected schema {doc.get('schema')!r}")
    return doc, doc.get("traceEvents", [])


def merge_docs(paths):
    """Fold several wbist.trace/1 documents into one, assigning each input a
    distinct pid (1, 2, ...) and summing drop counters."""
    events = []
    dropped = 0
    sources = []
    for pid, path in enumerate(paths, start=1):
        doc, evs = load_events(path)
        dropped += int(doc.get("otherData", {}).get("dropped_events", 0) or 0)
        sources.append(os.path.basename(path))
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": os.path.basename(path)}})
        for e in evs:
            e = dict(e)
            e["pid"] = pid
            events.append(e)
    return {
        "schema": "wbist.trace/1",
        "displayTimeUnit": "ms",
        "otherData": {"dropped_events": dropped, "sources": sources},
        "traceEvents": events,
    }


def fmt_ms(us):
    return f"{us / 1000.0:10.3f}"


class Agg:
    __slots__ = ("count", "total_us", "max_us")

    def __init__(self):
        self.count = 0
        self.total_us = 0.0
        self.max_us = 0.0

    def add(self, dur_us):
        self.count += 1
        self.total_us += dur_us
        self.max_us = max(self.max_us, dur_us)


def render(rows, header):
    widths = [max(len(str(r[i])) for r in [header] + rows)
              for i in range(len(header))]
    def line(r):
        return "  ".join(str(v).rjust(w) if i else str(v).ljust(w)
                         for i, (v, w) in enumerate(zip(r, widths)))
    out = [line(header), line(["-" * w for w in widths])]
    out.extend(line(r) for r in rows)
    return "\n".join(out)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("traces", nargs="+",
                    help="trace JSON file(s) written by --trace-json")
    ap.add_argument("--by-tid", action="store_true",
                    help="break span names down per thread id")
    ap.add_argument("--merge", metavar="OUT",
                    help="write the stitched multi-process trace JSON here")
    args = ap.parse_args()

    if len(args.traces) == 1 and not args.merge:
        doc, events = load_events(args.traces[0])
    else:
        doc = merge_docs(args.traces)
        events = doc["traceEvents"]
        if args.merge:
            with open(args.merge, "w", encoding="utf-8") as f:
                json.dump(doc, f)
                f.write("\n")
            print(f"wrote {args.merge} ({len(args.traces)} processes)",
                  file=sys.stderr)

    spans = defaultdict(Agg)          # name -> Agg
    per_tid = defaultdict(Agg)        # (name, pid, tid) -> Agg
    instants = defaultdict(int)       # name -> count
    tids = set()
    for e in events:
        ph = e.get("ph")
        if ph == "X":
            name = e.get("name", "?")
            key = (e.get("pid", 0), e.get("tid", 0))
            dur = float(e.get("dur", 0.0))
            spans[name].add(dur)
            per_tid[(name,) + key].add(dur)
            tids.add(key)
        elif ph == "i":
            instants[e.get("name", "?")] += 1

    rows = [[name, a.count, fmt_ms(a.total_us),
             fmt_ms(a.total_us / a.count), fmt_ms(a.max_us)]
            for name, a in sorted(spans.items(),
                                  key=lambda kv: -kv[1].total_us)]
    print(render(rows, ["span", "count", "total_ms", "mean_ms", "max_ms"]))

    if instants:
        print()
        print(render([[n, c] for n, c in sorted(instants.items())],
                     ["instant", "count"]))

    other = doc.get("otherData", {})
    dropped = int(other.get("dropped_events", 0) or 0)
    print(f"\nthreads: {len(tids)}  span events: "
          f"{sum(a.count for a in spans.values())}  dropped: {dropped}")
    if dropped:
        print("warning: ring buffers wrapped; the earliest "
              f"{dropped} event(s) were dropped and this summary is "
              "incomplete (raise the capacity or trace a shorter run; "
              "--metrics-json reports the same count as the "
              "trace.spans_dropped counter)", file=sys.stderr)

    if args.by_tid:
        print()
        rows = [[f"{name} @p{pid}t{tid}", a.count, fmt_ms(a.total_us),
                 fmt_ms(a.total_us / a.count), fmt_ms(a.max_us)]
                for (name, pid, tid), a in sorted(per_tid.items())]
        print(render(rows, ["span@proc", "count", "total_ms", "mean_ms",
                            "max_ms"]))
    return 0


if __name__ == "__main__":
    sys.exit(main())
