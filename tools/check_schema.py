#!/usr/bin/env python3
"""Minimal JSON-schema validator for the repo's committed schemas.

Usage:
  tools/check_schema.py docs/schemas/wbist.trace.schema.json trace.json
  tools/check_schema.py --jsonl docs/schemas/wbist.provenance.schema.json p.jsonl

Supports the subset of JSON Schema the wbist schemas use — type, required,
properties, items, enum, const, minimum — so CI can validate artifacts
without a third-party jsonschema dependency. With --jsonl the instance file
is validated line by line (each line one JSON document); the schema may give
per-event subschemas in "oneOf" keyed by matching "properties"/"const".
"""

import argparse
import json
import sys

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


def check(instance, schema, path="$"):
    """Return a list of error strings (empty when valid)."""
    errors = []
    t = schema.get("type")
    if t is not None:
        types = t if isinstance(t, list) else [t]
        ok = False
        for name in types:
            py = TYPES[name]
            if isinstance(instance, py) and not (
                    name in ("integer", "number")
                    and isinstance(instance, bool)):
                ok = True
                break
        if not ok:
            return [f"{path}: expected type {t}, got "
                    f"{type(instance).__name__}"]
    if "const" in schema and instance != schema["const"]:
        errors.append(f"{path}: expected const {schema['const']!r}, "
                      f"got {instance!r}")
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in enum {schema['enum']}")
    if "minimum" in schema and isinstance(instance, (int, float)) \
            and not isinstance(instance, bool) \
            and instance < schema["minimum"]:
        errors.append(f"{path}: {instance} < minimum {schema['minimum']}")
    if isinstance(instance, dict):
        for key in schema.get("required", []):
            if key not in instance:
                errors.append(f"{path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in instance:
                errors.extend(check(instance[key], sub, f"{path}.{key}"))
    if isinstance(instance, list) and "items" in schema:
        for i, item in enumerate(instance):
            errors.extend(check(item, schema["items"], f"{path}[{i}]"))
    if "oneOf" in schema:
        branches = [check(instance, sub, path) for sub in schema["oneOf"]]
        if not any(not b for b in branches):
            flat = "; ".join(e for b in branches for e in b[:1])
            errors.append(f"{path}: matches no oneOf branch ({flat})")
    return errors


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("schema")
    ap.add_argument("instance")
    ap.add_argument("--jsonl", action="store_true",
                    help="validate each line of the instance file separately")
    args = ap.parse_args()

    with open(args.schema, "r", encoding="utf-8") as f:
        schema = json.load(f)

    errors = []
    if args.jsonl:
        with open(args.instance, "r", encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError as e:
                    errors.append(f"line {lineno}: invalid JSON: {e}")
                    continue
                errors.extend(f"line {lineno}: {e}"
                              for e in check(doc, schema))
    else:
        with open(args.instance, "r", encoding="utf-8") as f:
            doc = json.load(f)
        errors = check(doc, schema)

    for e in errors[:50]:
        print(e, file=sys.stderr)
    if errors:
        print(f"check_schema: {args.instance} FAILED "
              f"({len(errors)} errors)", file=sys.stderr)
        return 1
    print(f"check_schema: {args.instance} ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
