file(REMOVE_RECURSE
  "CMakeFiles/circuits_tests.dir/circuits/iscas_test.cpp.o"
  "CMakeFiles/circuits_tests.dir/circuits/iscas_test.cpp.o.d"
  "CMakeFiles/circuits_tests.dir/circuits/synth_gen_test.cpp.o"
  "CMakeFiles/circuits_tests.dir/circuits/synth_gen_test.cpp.o.d"
  "circuits_tests"
  "circuits_tests.pdb"
  "circuits_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuits_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
