# Empty dependencies file for circuits_tests.
# This may be replaced when dependencies are built.
