
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/assignment_test.cpp" "tests/CMakeFiles/core_tests.dir/core/assignment_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/assignment_test.cpp.o.d"
  "/root/repo/tests/core/example_s27_test.cpp" "tests/CMakeFiles/core_tests.dir/core/example_s27_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/example_s27_test.cpp.o.d"
  "/root/repo/tests/core/fsm_synth_test.cpp" "tests/CMakeFiles/core_tests.dir/core/fsm_synth_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/fsm_synth_test.cpp.o.d"
  "/root/repo/tests/core/generator_fuzz_test.cpp" "tests/CMakeFiles/core_tests.dir/core/generator_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/generator_fuzz_test.cpp.o.d"
  "/root/repo/tests/core/generator_hw_test.cpp" "tests/CMakeFiles/core_tests.dir/core/generator_hw_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/generator_hw_test.cpp.o.d"
  "/root/repo/tests/core/lfsr_test.cpp" "tests/CMakeFiles/core_tests.dir/core/lfsr_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/lfsr_test.cpp.o.d"
  "/root/repo/tests/core/misr_test.cpp" "tests/CMakeFiles/core_tests.dir/core/misr_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/misr_test.cpp.o.d"
  "/root/repo/tests/core/obs_points_test.cpp" "tests/CMakeFiles/core_tests.dir/core/obs_points_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/obs_points_test.cpp.o.d"
  "/root/repo/tests/core/procedure_test.cpp" "tests/CMakeFiles/core_tests.dir/core/procedure_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/procedure_test.cpp.o.d"
  "/root/repo/tests/core/qm_test.cpp" "tests/CMakeFiles/core_tests.dir/core/qm_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/qm_test.cpp.o.d"
  "/root/repo/tests/core/random_extension_test.cpp" "tests/CMakeFiles/core_tests.dir/core/random_extension_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/random_extension_test.cpp.o.d"
  "/root/repo/tests/core/report_test.cpp" "tests/CMakeFiles/core_tests.dir/core/report_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/report_test.cpp.o.d"
  "/root/repo/tests/core/reverse_sim_test.cpp" "tests/CMakeFiles/core_tests.dir/core/reverse_sim_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/reverse_sim_test.cpp.o.d"
  "/root/repo/tests/core/selftest_test.cpp" "tests/CMakeFiles/core_tests.dir/core/selftest_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/selftest_test.cpp.o.d"
  "/root/repo/tests/core/subsequence_test.cpp" "tests/CMakeFiles/core_tests.dir/core/subsequence_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/subsequence_test.cpp.o.d"
  "/root/repo/tests/core/three_weight_baseline_test.cpp" "tests/CMakeFiles/core_tests.dir/core/three_weight_baseline_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/three_weight_baseline_test.cpp.o.d"
  "/root/repo/tests/core/weight_set_test.cpp" "tests/CMakeFiles/core_tests.dir/core/weight_set_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/weight_set_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wbist_core.dir/DependInfo.cmake"
  "/root/repo/build/src/circuits/CMakeFiles/wbist_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/tgen/CMakeFiles/wbist_tgen.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/wbist_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wbist_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/wbist_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wbist_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
