# Empty compiler generated dependencies file for tgen_tests.
# This may be replaced when dependencies are built.
