file(REMOVE_RECURSE
  "CMakeFiles/tgen_tests.dir/tgen/compaction_test.cpp.o"
  "CMakeFiles/tgen_tests.dir/tgen/compaction_test.cpp.o.d"
  "CMakeFiles/tgen_tests.dir/tgen/random_tgen_test.cpp.o"
  "CMakeFiles/tgen_tests.dir/tgen/random_tgen_test.cpp.o.d"
  "tgen_tests"
  "tgen_tests.pdb"
  "tgen_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgen_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
