file(REMOVE_RECURSE
  "CMakeFiles/wbist.dir/wbist_cli.cpp.o"
  "CMakeFiles/wbist.dir/wbist_cli.cpp.o.d"
  "wbist"
  "wbist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wbist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
