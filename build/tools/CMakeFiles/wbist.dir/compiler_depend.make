# Empty compiler generated dependencies file for wbist.
# This may be replaced when dependencies are built.
