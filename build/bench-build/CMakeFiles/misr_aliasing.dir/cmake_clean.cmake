file(REMOVE_RECURSE
  "../bench/misr_aliasing"
  "../bench/misr_aliasing.pdb"
  "CMakeFiles/misr_aliasing.dir/misr_aliasing.cpp.o"
  "CMakeFiles/misr_aliasing.dir/misr_aliasing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/misr_aliasing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
