file(REMOVE_RECURSE
  "../bench/table8_s298"
  "../bench/table8_s298.pdb"
  "CMakeFiles/table8_s298.dir/obs_table.cpp.o"
  "CMakeFiles/table8_s298.dir/obs_table.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_s298.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
