# Empty compiler generated dependencies file for table8_s298.
# This may be replaced when dependencies are built.
