file(REMOVE_RECURSE
  "../bench/table15_s1423"
  "../bench/table15_s1423.pdb"
  "CMakeFiles/table15_s1423.dir/obs_table.cpp.o"
  "CMakeFiles/table15_s1423.dir/obs_table.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table15_s1423.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
