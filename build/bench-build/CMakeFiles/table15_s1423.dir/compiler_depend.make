# Empty compiler generated dependencies file for table15_s1423.
# This may be replaced when dependencies are built.
