file(REMOVE_RECURSE
  "../bench/table3_fsm"
  "../bench/table3_fsm.pdb"
  "CMakeFiles/table3_fsm.dir/table3_fsm.cpp.o"
  "CMakeFiles/table3_fsm.dir/table3_fsm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_fsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
