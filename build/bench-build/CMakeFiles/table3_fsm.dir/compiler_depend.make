# Empty compiler generated dependencies file for table3_fsm.
# This may be replaced when dependencies are built.
