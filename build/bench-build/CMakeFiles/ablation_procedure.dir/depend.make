# Empty dependencies file for ablation_procedure.
# This may be replaced when dependencies are built.
