file(REMOVE_RECURSE
  "../bench/ablation_procedure"
  "../bench/ablation_procedure.pdb"
  "CMakeFiles/ablation_procedure.dir/ablation_procedure.cpp.o"
  "CMakeFiles/ablation_procedure.dir/ablation_procedure.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_procedure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
