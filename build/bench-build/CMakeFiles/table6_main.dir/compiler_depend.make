# Empty compiler generated dependencies file for table6_main.
# This may be replaced when dependencies are built.
