file(REMOVE_RECURSE
  "../bench/table6_main"
  "../bench/table6_main.pdb"
  "CMakeFiles/table6_main.dir/table6_main.cpp.o"
  "CMakeFiles/table6_main.dir/table6_main.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
