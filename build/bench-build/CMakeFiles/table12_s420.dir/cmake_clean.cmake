file(REMOVE_RECURSE
  "../bench/table12_s420"
  "../bench/table12_s420.pdb"
  "CMakeFiles/table12_s420.dir/obs_table.cpp.o"
  "CMakeFiles/table12_s420.dir/obs_table.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table12_s420.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
