# Empty compiler generated dependencies file for table12_s420.
# This may be replaced when dependencies are built.
