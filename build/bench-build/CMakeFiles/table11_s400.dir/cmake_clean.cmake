file(REMOVE_RECURSE
  "../bench/table11_s400"
  "../bench/table11_s400.pdb"
  "CMakeFiles/table11_s400.dir/obs_table.cpp.o"
  "CMakeFiles/table11_s400.dir/obs_table.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table11_s400.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
