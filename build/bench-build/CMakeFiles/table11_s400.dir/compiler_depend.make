# Empty compiler generated dependencies file for table11_s400.
# This may be replaced when dependencies are built.
