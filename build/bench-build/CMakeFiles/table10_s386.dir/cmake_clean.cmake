file(REMOVE_RECURSE
  "../bench/table10_s386"
  "../bench/table10_s386.pdb"
  "CMakeFiles/table10_s386.dir/obs_table.cpp.o"
  "CMakeFiles/table10_s386.dir/obs_table.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_s386.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
