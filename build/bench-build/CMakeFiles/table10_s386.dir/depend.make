# Empty dependencies file for table10_s386.
# This may be replaced when dependencies are built.
