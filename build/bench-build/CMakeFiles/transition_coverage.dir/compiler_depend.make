# Empty compiler generated dependencies file for transition_coverage.
# This may be replaced when dependencies are built.
