file(REMOVE_RECURSE
  "../bench/transition_coverage"
  "../bench/transition_coverage.pdb"
  "CMakeFiles/transition_coverage.dir/transition_coverage.cpp.o"
  "CMakeFiles/transition_coverage.dir/transition_coverage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transition_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
