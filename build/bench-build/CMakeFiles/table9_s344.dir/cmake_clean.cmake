file(REMOVE_RECURSE
  "../bench/table9_s344"
  "../bench/table9_s344.pdb"
  "CMakeFiles/table9_s344.dir/obs_table.cpp.o"
  "CMakeFiles/table9_s344.dir/obs_table.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_s344.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
