# Empty dependencies file for table9_s344.
# This may be replaced when dependencies are built.
