
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_baseline.cpp" "bench-build/CMakeFiles/ablation_baseline.dir/ablation_baseline.cpp.o" "gcc" "bench-build/CMakeFiles/ablation_baseline.dir/ablation_baseline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/wbist_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wbist_core.dir/DependInfo.cmake"
  "/root/repo/build/src/circuits/CMakeFiles/wbist_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/tgen/CMakeFiles/wbist_tgen.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/wbist_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wbist_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/wbist_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wbist_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
