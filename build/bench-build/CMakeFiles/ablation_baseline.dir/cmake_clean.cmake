file(REMOVE_RECURSE
  "../bench/ablation_baseline"
  "../bench/ablation_baseline.pdb"
  "CMakeFiles/ablation_baseline.dir/ablation_baseline.cpp.o"
  "CMakeFiles/ablation_baseline.dir/ablation_baseline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
