# Empty compiler generated dependencies file for table14_s641.
# This may be replaced when dependencies are built.
