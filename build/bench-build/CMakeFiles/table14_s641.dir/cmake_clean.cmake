file(REMOVE_RECURSE
  "../bench/table14_s641"
  "../bench/table14_s641.pdb"
  "CMakeFiles/table14_s641.dir/obs_table.cpp.o"
  "CMakeFiles/table14_s641.dir/obs_table.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table14_s641.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
