file(REMOVE_RECURSE
  "../bench/table7_s208"
  "../bench/table7_s208.pdb"
  "CMakeFiles/table7_s208.dir/obs_table.cpp.o"
  "CMakeFiles/table7_s208.dir/obs_table.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_s208.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
