# Empty compiler generated dependencies file for table7_s208.
# This may be replaced when dependencies are built.
