# Empty compiler generated dependencies file for table1_2_4_5_s27_example.
# This may be replaced when dependencies are built.
