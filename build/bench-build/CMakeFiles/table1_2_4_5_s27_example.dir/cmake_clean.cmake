file(REMOVE_RECURSE
  "../bench/table1_2_4_5_s27_example"
  "../bench/table1_2_4_5_s27_example.pdb"
  "CMakeFiles/table1_2_4_5_s27_example.dir/table1_2_4_5_s27_example.cpp.o"
  "CMakeFiles/table1_2_4_5_s27_example.dir/table1_2_4_5_s27_example.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_2_4_5_s27_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
