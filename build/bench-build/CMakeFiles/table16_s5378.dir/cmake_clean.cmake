file(REMOVE_RECURSE
  "../bench/table16_s5378"
  "../bench/table16_s5378.pdb"
  "CMakeFiles/table16_s5378.dir/obs_table.cpp.o"
  "CMakeFiles/table16_s5378.dir/obs_table.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table16_s5378.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
