# Empty dependencies file for table16_s5378.
# This may be replaced when dependencies are built.
