# Empty dependencies file for figure1_generator.
# This may be replaced when dependencies are built.
