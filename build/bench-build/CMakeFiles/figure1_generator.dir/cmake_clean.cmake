file(REMOVE_RECURSE
  "../bench/figure1_generator"
  "../bench/figure1_generator.pdb"
  "CMakeFiles/figure1_generator.dir/figure1_generator.cpp.o"
  "CMakeFiles/figure1_generator.dir/figure1_generator.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure1_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
