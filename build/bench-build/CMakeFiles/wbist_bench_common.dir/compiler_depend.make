# Empty compiler generated dependencies file for wbist_bench_common.
# This may be replaced when dependencies are built.
