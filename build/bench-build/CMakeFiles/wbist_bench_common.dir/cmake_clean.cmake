file(REMOVE_RECURSE
  "../lib/libwbist_bench_common.a"
  "../lib/libwbist_bench_common.pdb"
  "CMakeFiles/wbist_bench_common.dir/common/bench_common.cpp.o"
  "CMakeFiles/wbist_bench_common.dir/common/bench_common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wbist_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
