file(REMOVE_RECURSE
  "../lib/libwbist_bench_common.a"
)
