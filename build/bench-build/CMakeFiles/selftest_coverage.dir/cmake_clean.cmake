file(REMOVE_RECURSE
  "../bench/selftest_coverage"
  "../bench/selftest_coverage.pdb"
  "CMakeFiles/selftest_coverage.dir/selftest_coverage.cpp.o"
  "CMakeFiles/selftest_coverage.dir/selftest_coverage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selftest_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
