file(REMOVE_RECURSE
  "../bench/table13_s526"
  "../bench/table13_s526.pdb"
  "CMakeFiles/table13_s526.dir/obs_table.cpp.o"
  "CMakeFiles/table13_s526.dir/obs_table.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table13_s526.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
