# Empty dependencies file for table13_s526.
# This may be replaced when dependencies are built.
