file(REMOVE_RECURSE
  "CMakeFiles/wbist_tgen.dir/compaction.cpp.o"
  "CMakeFiles/wbist_tgen.dir/compaction.cpp.o.d"
  "CMakeFiles/wbist_tgen.dir/random_tgen.cpp.o"
  "CMakeFiles/wbist_tgen.dir/random_tgen.cpp.o.d"
  "libwbist_tgen.a"
  "libwbist_tgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wbist_tgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
