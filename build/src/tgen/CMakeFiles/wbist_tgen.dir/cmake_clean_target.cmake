file(REMOVE_RECURSE
  "libwbist_tgen.a"
)
