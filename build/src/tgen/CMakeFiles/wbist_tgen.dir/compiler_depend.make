# Empty compiler generated dependencies file for wbist_tgen.
# This may be replaced when dependencies are built.
