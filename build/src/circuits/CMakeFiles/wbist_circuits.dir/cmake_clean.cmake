file(REMOVE_RECURSE
  "CMakeFiles/wbist_circuits.dir/iscas.cpp.o"
  "CMakeFiles/wbist_circuits.dir/iscas.cpp.o.d"
  "CMakeFiles/wbist_circuits.dir/registry.cpp.o"
  "CMakeFiles/wbist_circuits.dir/registry.cpp.o.d"
  "CMakeFiles/wbist_circuits.dir/synth_gen.cpp.o"
  "CMakeFiles/wbist_circuits.dir/synth_gen.cpp.o.d"
  "libwbist_circuits.a"
  "libwbist_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wbist_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
