file(REMOVE_RECURSE
  "libwbist_circuits.a"
)
