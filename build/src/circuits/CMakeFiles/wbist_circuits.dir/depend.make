# Empty dependencies file for wbist_circuits.
# This may be replaced when dependencies are built.
