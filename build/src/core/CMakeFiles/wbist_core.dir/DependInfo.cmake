
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/assignment.cpp" "src/core/CMakeFiles/wbist_core.dir/assignment.cpp.o" "gcc" "src/core/CMakeFiles/wbist_core.dir/assignment.cpp.o.d"
  "/root/repo/src/core/cover_hw.cpp" "src/core/CMakeFiles/wbist_core.dir/cover_hw.cpp.o" "gcc" "src/core/CMakeFiles/wbist_core.dir/cover_hw.cpp.o.d"
  "/root/repo/src/core/flow.cpp" "src/core/CMakeFiles/wbist_core.dir/flow.cpp.o" "gcc" "src/core/CMakeFiles/wbist_core.dir/flow.cpp.o.d"
  "/root/repo/src/core/fsm_synth.cpp" "src/core/CMakeFiles/wbist_core.dir/fsm_synth.cpp.o" "gcc" "src/core/CMakeFiles/wbist_core.dir/fsm_synth.cpp.o.d"
  "/root/repo/src/core/generator_hw.cpp" "src/core/CMakeFiles/wbist_core.dir/generator_hw.cpp.o" "gcc" "src/core/CMakeFiles/wbist_core.dir/generator_hw.cpp.o.d"
  "/root/repo/src/core/lfsr.cpp" "src/core/CMakeFiles/wbist_core.dir/lfsr.cpp.o" "gcc" "src/core/CMakeFiles/wbist_core.dir/lfsr.cpp.o.d"
  "/root/repo/src/core/misr.cpp" "src/core/CMakeFiles/wbist_core.dir/misr.cpp.o" "gcc" "src/core/CMakeFiles/wbist_core.dir/misr.cpp.o.d"
  "/root/repo/src/core/obs_points.cpp" "src/core/CMakeFiles/wbist_core.dir/obs_points.cpp.o" "gcc" "src/core/CMakeFiles/wbist_core.dir/obs_points.cpp.o.d"
  "/root/repo/src/core/procedure.cpp" "src/core/CMakeFiles/wbist_core.dir/procedure.cpp.o" "gcc" "src/core/CMakeFiles/wbist_core.dir/procedure.cpp.o.d"
  "/root/repo/src/core/qm.cpp" "src/core/CMakeFiles/wbist_core.dir/qm.cpp.o" "gcc" "src/core/CMakeFiles/wbist_core.dir/qm.cpp.o.d"
  "/root/repo/src/core/random_extension.cpp" "src/core/CMakeFiles/wbist_core.dir/random_extension.cpp.o" "gcc" "src/core/CMakeFiles/wbist_core.dir/random_extension.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/wbist_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/wbist_core.dir/report.cpp.o.d"
  "/root/repo/src/core/reverse_sim.cpp" "src/core/CMakeFiles/wbist_core.dir/reverse_sim.cpp.o" "gcc" "src/core/CMakeFiles/wbist_core.dir/reverse_sim.cpp.o.d"
  "/root/repo/src/core/selftest.cpp" "src/core/CMakeFiles/wbist_core.dir/selftest.cpp.o" "gcc" "src/core/CMakeFiles/wbist_core.dir/selftest.cpp.o.d"
  "/root/repo/src/core/subsequence.cpp" "src/core/CMakeFiles/wbist_core.dir/subsequence.cpp.o" "gcc" "src/core/CMakeFiles/wbist_core.dir/subsequence.cpp.o.d"
  "/root/repo/src/core/three_weight_baseline.cpp" "src/core/CMakeFiles/wbist_core.dir/three_weight_baseline.cpp.o" "gcc" "src/core/CMakeFiles/wbist_core.dir/three_weight_baseline.cpp.o.d"
  "/root/repo/src/core/weight_set.cpp" "src/core/CMakeFiles/wbist_core.dir/weight_set.cpp.o" "gcc" "src/core/CMakeFiles/wbist_core.dir/weight_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fault/CMakeFiles/wbist_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wbist_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/wbist_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/tgen/CMakeFiles/wbist_tgen.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wbist_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
