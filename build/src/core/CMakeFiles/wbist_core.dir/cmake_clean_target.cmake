file(REMOVE_RECURSE
  "libwbist_core.a"
)
