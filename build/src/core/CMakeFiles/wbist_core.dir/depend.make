# Empty dependencies file for wbist_core.
# This may be replaced when dependencies are built.
