# Empty dependencies file for wbist_sim.
# This may be replaced when dependencies are built.
