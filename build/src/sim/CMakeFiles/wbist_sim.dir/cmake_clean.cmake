file(REMOVE_RECURSE
  "CMakeFiles/wbist_sim.dir/good_sim.cpp.o"
  "CMakeFiles/wbist_sim.dir/good_sim.cpp.o.d"
  "CMakeFiles/wbist_sim.dir/sequence.cpp.o"
  "CMakeFiles/wbist_sim.dir/sequence.cpp.o.d"
  "CMakeFiles/wbist_sim.dir/sequence_io.cpp.o"
  "CMakeFiles/wbist_sim.dir/sequence_io.cpp.o.d"
  "CMakeFiles/wbist_sim.dir/vcd.cpp.o"
  "CMakeFiles/wbist_sim.dir/vcd.cpp.o.d"
  "libwbist_sim.a"
  "libwbist_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wbist_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
