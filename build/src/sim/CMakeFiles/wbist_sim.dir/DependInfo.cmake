
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/good_sim.cpp" "src/sim/CMakeFiles/wbist_sim.dir/good_sim.cpp.o" "gcc" "src/sim/CMakeFiles/wbist_sim.dir/good_sim.cpp.o.d"
  "/root/repo/src/sim/sequence.cpp" "src/sim/CMakeFiles/wbist_sim.dir/sequence.cpp.o" "gcc" "src/sim/CMakeFiles/wbist_sim.dir/sequence.cpp.o.d"
  "/root/repo/src/sim/sequence_io.cpp" "src/sim/CMakeFiles/wbist_sim.dir/sequence_io.cpp.o" "gcc" "src/sim/CMakeFiles/wbist_sim.dir/sequence_io.cpp.o.d"
  "/root/repo/src/sim/vcd.cpp" "src/sim/CMakeFiles/wbist_sim.dir/vcd.cpp.o" "gcc" "src/sim/CMakeFiles/wbist_sim.dir/vcd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/wbist_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wbist_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
