file(REMOVE_RECURSE
  "libwbist_sim.a"
)
