file(REMOVE_RECURSE
  "CMakeFiles/wbist_util.dir/strings.cpp.o"
  "CMakeFiles/wbist_util.dir/strings.cpp.o.d"
  "CMakeFiles/wbist_util.dir/table.cpp.o"
  "CMakeFiles/wbist_util.dir/table.cpp.o.d"
  "libwbist_util.a"
  "libwbist_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wbist_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
