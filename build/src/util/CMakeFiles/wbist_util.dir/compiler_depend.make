# Empty compiler generated dependencies file for wbist_util.
# This may be replaced when dependencies are built.
