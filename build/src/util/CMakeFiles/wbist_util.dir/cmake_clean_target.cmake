file(REMOVE_RECURSE
  "libwbist_util.a"
)
