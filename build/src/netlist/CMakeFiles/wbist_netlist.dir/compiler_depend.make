# Empty compiler generated dependencies file for wbist_netlist.
# This may be replaced when dependencies are built.
