file(REMOVE_RECURSE
  "libwbist_netlist.a"
)
