file(REMOVE_RECURSE
  "CMakeFiles/wbist_netlist.dir/bench_io.cpp.o"
  "CMakeFiles/wbist_netlist.dir/bench_io.cpp.o.d"
  "CMakeFiles/wbist_netlist.dir/compose.cpp.o"
  "CMakeFiles/wbist_netlist.dir/compose.cpp.o.d"
  "CMakeFiles/wbist_netlist.dir/netlist.cpp.o"
  "CMakeFiles/wbist_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/wbist_netlist.dir/verilog_io.cpp.o"
  "CMakeFiles/wbist_netlist.dir/verilog_io.cpp.o.d"
  "libwbist_netlist.a"
  "libwbist_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wbist_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
