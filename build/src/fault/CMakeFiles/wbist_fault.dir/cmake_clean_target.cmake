file(REMOVE_RECURSE
  "libwbist_fault.a"
)
