# Empty compiler generated dependencies file for wbist_fault.
# This may be replaced when dependencies are built.
