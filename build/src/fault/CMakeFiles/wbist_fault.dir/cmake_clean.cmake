file(REMOVE_RECURSE
  "CMakeFiles/wbist_fault.dir/fault_list.cpp.o"
  "CMakeFiles/wbist_fault.dir/fault_list.cpp.o.d"
  "CMakeFiles/wbist_fault.dir/fault_sim.cpp.o"
  "CMakeFiles/wbist_fault.dir/fault_sim.cpp.o.d"
  "CMakeFiles/wbist_fault.dir/transition.cpp.o"
  "CMakeFiles/wbist_fault.dir/transition.cpp.o.d"
  "libwbist_fault.a"
  "libwbist_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wbist_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
