# Empty compiler generated dependencies file for atpg_and_compaction.
# This may be replaced when dependencies are built.
