file(REMOVE_RECURSE
  "CMakeFiles/atpg_and_compaction.dir/atpg_and_compaction.cpp.o"
  "CMakeFiles/atpg_and_compaction.dir/atpg_and_compaction.cpp.o.d"
  "atpg_and_compaction"
  "atpg_and_compaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atpg_and_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
