file(REMOVE_RECURSE
  "CMakeFiles/observation_tradeoff.dir/observation_tradeoff.cpp.o"
  "CMakeFiles/observation_tradeoff.dir/observation_tradeoff.cpp.o.d"
  "observation_tradeoff"
  "observation_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/observation_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
