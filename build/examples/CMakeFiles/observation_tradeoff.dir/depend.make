# Empty dependencies file for observation_tradeoff.
# This may be replaced when dependencies are built.
