# Empty dependencies file for bist_synthesis.
# This may be replaced when dependencies are built.
