file(REMOVE_RECURSE
  "CMakeFiles/bist_synthesis.dir/bist_synthesis.cpp.o"
  "CMakeFiles/bist_synthesis.dir/bist_synthesis.cpp.o.d"
  "bist_synthesis"
  "bist_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bist_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
