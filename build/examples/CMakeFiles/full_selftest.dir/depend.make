# Empty dependencies file for full_selftest.
# This may be replaced when dependencies are built.
