file(REMOVE_RECURSE
  "CMakeFiles/full_selftest.dir/full_selftest.cpp.o"
  "CMakeFiles/full_selftest.dir/full_selftest.cpp.o.d"
  "full_selftest"
  "full_selftest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_selftest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
