// BIST synthesis: from a netlist to tape-out-ready test hardware.
//
// This is the downstream-user scenario the paper motivates: a design team
// has a synchronous circuit and wants on-chip test generation without
// touching the functional flip-flops. The example
//
//   1. runs the full flow (deterministic sequence -> pruned Ω),
//   2. synthesizes the Figure-1 generator as a gate-level netlist,
//   3. writes both the CUT and the generator to `.bench` files,
//   4. re-verifies on the emitted netlist that the on-chip streams equal
//      the software model, cycle by cycle,
//   5. reports the area overhead of the BIST logic.
//
// Usage: ./build/examples/bist_synthesis [circuit] (default s298)
#include <cstdio>
#include <string>

#include "circuits/registry.h"
#include "core/flow.h"
#include "core/generator_hw.h"
#include "fault/fault_list.h"
#include "fault/fault_sim.h"
#include "netlist/bench_io.h"
#include "sim/good_sim.h"
#include "util/out_dir.h"

int main(int argc, char** argv) {
  using namespace wbist;
  const std::string name = argc > 1 ? argv[1] : "s298";

  const netlist::Netlist circuit = circuits::circuit_by_name(name);
  const fault::FaultSet faults = fault::FaultSet::collapsed(circuit);
  fault::FaultSimulator simulator(circuit, faults);

  core::FlowConfig config;
  config.tgen.max_length = 1024;
  config.procedure.sequence_length = 500;
  const core::FlowResult flow = core::run_flow(simulator, name, config);
  std::printf("%s: |T| = %zu, %zu targets, %zu weight assignments after "
              "pruning, fault efficiency %.1f%%\n",
              name.c_str(), flow.sequence.length(), flow.t_detected,
              flow.pruned.omega.size(),
              100.0 * flow.procedure.fault_efficiency());

  const core::GeneratorHardware hw =
      core::build_generator(flow.pruned.omega, flow.procedure.sequence_length);
  std::printf("generator: %zu weight FSMs, %zu FSM outputs, session length "
              "%zu cycles\n",
              hw.fsms.fsm_count(), hw.fsms.output_count(), hw.session_length);

  const std::string cut_path = util::out_path(name + "_cut.bench");
  const std::string bist_path = util::out_path(name + "_bist.bench");
  netlist::write_bench_file(circuit, cut_path);
  netlist::write_bench_file(hw.netlist, bist_path);
  std::printf("wrote %s and %s\n", cut_path.c_str(), bist_path.c_str());

  // Cycle-accurate sign-off check on the emitted netlist.
  const netlist::Netlist reloaded = netlist::read_bench_file(bist_path);
  sim::GoodSimulator gen(reloaded);
  gen.step(std::vector<sim::Val3>{sim::Val3::kOne});  // reset pulse
  std::size_t mismatches = 0;
  for (const core::WeightAssignment& w : flow.pruned.omega) {
    const sim::TestSequence expect = w.expand(hw.session_length);
    for (std::size_t u = 0; u < hw.session_length; ++u) {
      gen.step(std::vector<sim::Val3>{sim::Val3::kZero});
      const auto out = gen.outputs();
      for (std::size_t i = 0; i < out.size(); ++i)
        if (out[i] != expect.at(u, i)) ++mismatches;
    }
  }
  std::printf("sign-off: %zu stream mismatches across %zu sessions (%s)\n",
              mismatches, hw.session_count,
              mismatches == 0 ? "PASS" : "FAIL");

  const auto cut = circuit.stats();
  const auto bist = hw.stats();
  std::printf("area: CUT %zu gates / %zu FFs; BIST %zu gates / %zu FFs "
              "(%.1f%% gate overhead)\n",
              cut.logic_gates, cut.flip_flops, bist.logic_gates,
              bist.flip_flops,
              100.0 * static_cast<double>(bist.logic_gates) /
                  static_cast<double>(cut.logic_gates));
  return mismatches == 0 ? 0 : 1;
}
