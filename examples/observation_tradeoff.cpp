// Observation-point tradeoff exploration (the paper's Section 5 scenario).
//
// A test engineer with a tight area budget asks: "how many weight
// assignments do I really need if I may add a few observation points?"
// This example sweeps the tradeoff for one circuit and prints the frontier:
// each row is a (number of BIST sessions, number of observation points)
// operating point reaching >= 99% fault efficiency.
//
// Usage: ./build/examples/observation_tradeoff [circuit] (default s344)
#include <cstdio>
#include <string>

#include "circuits/registry.h"
#include "core/flow.h"
#include "core/obs_points.h"
#include "fault/fault_list.h"
#include "fault/fault_sim.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace wbist;
  const std::string name = argc > 1 ? argv[1] : "s344";

  const netlist::Netlist circuit = circuits::circuit_by_name(name);
  const fault::FaultSet faults = fault::FaultSet::collapsed(circuit);
  fault::FaultSimulator simulator(circuit, faults);

  core::FlowConfig config;
  config.tgen.max_length = 1024;
  config.procedure.sequence_length = 500;
  const core::FlowResult flow = core::run_flow(simulator, name, config);

  std::vector<fault::FaultId> targets;
  for (fault::FaultId f = 0; f < faults.size(); ++f)
    if (flow.detection_time[f] != fault::DetectionResult::kUndetected)
      targets.push_back(f);

  core::ObsTradeoffConfig cfg;
  cfg.sequence_length = flow.procedure.sequence_length;
  const core::ObsTradeoffResult result = core::observation_point_tradeoff(
      simulator, flow.procedure.omega, targets, cfg);

  std::printf("%s: %zu target faults, %zu candidate weight assignments\n\n",
              name.c_str(), targets.size(), flow.procedure.omega.size());

  util::Table t{"Sessions vs observation points (>= 99% final f.e.)"};
  t.header({"seq", "subs", "len", "f.e. before", "obs", "f.e. after"});
  for (const core::ObsRow& row : result.rows)
    t.row({std::to_string(row.n_seq), std::to_string(row.n_subs),
           std::to_string(row.max_len), util::fixed(row.fe_before, 1),
           std::to_string(row.n_obs), util::fixed(row.fe_after, 1)});
  std::fputs(t.render().c_str(), stdout);

  if (!result.rows.empty()) {
    const core::ObsRow& cheap = result.rows.front();
    std::printf("\ncheapest session count: %zu sessions + %zu observation "
                "points;\nobservation-point lines:", cheap.n_seq, cheap.n_obs);
    for (const netlist::NodeId line : cheap.observation_points)
      std::printf(" %s", circuit.node(line).name.c_str());
    std::printf("\n");
  }
  return 0;
}
