// Test-generation substrate walk-through: deterministic sequence creation
// and static compaction, the inputs the weighted-BIST method consumes.
//
// Shows the library as a plain sequential test-generation toolkit:
//   1. build the collapsed fault list for a circuit,
//   2. generate a deterministic test sequence with multi-profile
//      weighted-random search and fault dropping,
//   3. statically compact it while preserving every detected fault,
//   4. print the detection-time histogram that drives weight selection.
//
// Usage: ./build/examples/atpg_and_compaction [circuit] (default s386)
#include <algorithm>
#include <cstdio>
#include <string>

#include "circuits/registry.h"
#include "fault/fault_list.h"
#include "fault/fault_sim.h"
#include "tgen/compaction.h"
#include "tgen/random_tgen.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace wbist;
  const std::string name = argc > 1 ? argv[1] : "s386";

  const netlist::Netlist circuit = circuits::circuit_by_name(name);
  const auto stats = circuit.stats();
  std::printf("%s: %zu PIs, %zu POs, %zu FFs, %zu gates, depth %zu\n",
              name.c_str(), stats.primary_inputs, stats.primary_outputs,
              stats.flip_flops, stats.logic_gates, stats.max_level);

  const fault::FaultSet faults = fault::FaultSet::collapsed(circuit);
  fault::FaultSimulator simulator(circuit, faults);
  std::printf("fault universe: %zu collapsed stuck-at faults (%zu lines)\n\n",
              faults.size(), stats.lines);

  util::Timer timer;
  tgen::TgenConfig tc;
  tc.max_length = 2048;
  const tgen::TgenResult gen = tgen::generate_test_sequence(simulator, tc);
  std::printf("generation: |T| = %zu vectors, %zu/%zu faults detected "
              "(%.1f%%) in %.2fs\n",
              gen.sequence.length(), gen.detected, faults.size(),
              100.0 * static_cast<double>(gen.detected) /
                  static_cast<double>(faults.size()),
              timer.seconds());

  std::vector<fault::FaultId> must;
  for (fault::FaultId f = 0; f < faults.size(); ++f)
    if (gen.detection_time[f] != fault::DetectionResult::kUndetected)
      must.push_back(f);

  timer.reset();
  const tgen::CompactionResult compact =
      tgen::compact_sequence(simulator, gen.sequence, must);
  std::printf("compaction: %zu -> %zu vectors (-%zu) in %.2fs, "
              "%zu fault simulations, coverage preserved\n\n",
              gen.sequence.length(), compact.sequence.length(),
              compact.removed_vectors, timer.seconds(),
              compact.simulations_used);

  // Detection-time histogram of the compacted sequence (8 buckets).
  std::int32_t last = 0;
  for (const auto t : compact.detection_time) last = std::max(last, t);
  const std::size_t bucket =
      std::max<std::size_t>(1, (static_cast<std::size_t>(last) + 8) / 8);
  util::Table t{"Detection-time histogram (compacted T)"};
  t.header({"u range", "faults detected"});
  for (std::size_t lo = 0; lo <= static_cast<std::size_t>(last);
       lo += bucket) {
    std::size_t count = 0;
    for (const auto dt : compact.detection_time)
      if (dt >= 0 && static_cast<std::size_t>(dt) >= lo &&
          static_cast<std::size_t>(dt) < lo + bucket)
        ++count;
    t.row({std::to_string(lo) + ".." + std::to_string(lo + bucket - 1),
           std::to_string(count)});
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf("\nthe tail of this histogram (hard, late-detected faults) is\n"
              "where the weighted-BIST procedure starts deriving weights.\n");
  return 0;
}
