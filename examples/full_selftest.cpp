// Full self-test: one pin in, pass/fail out.
//
// The end-to-end scenario the paper's hardware (Figure 1) exists for:
// assemble the weighted-sequence generator, the circuit under test and a
// MISR into one autonomous netlist, pulse the single reset pin, clock for
// the test length, and compare the signature against the golden value.
//
// Usage: ./build/examples/full_selftest [circuit] (default s27)
#include <cstdio>
#include <string>

#include "circuits/registry.h"
#include "core/flow.h"
#include "core/selftest.h"
#include "fault/fault_list.h"
#include "fault/fault_sim.h"
#include "netlist/bench_io.h"
#include "sim/good_sim.h"
#include "util/out_dir.h"

int main(int argc, char** argv) {
  using namespace wbist;
  const std::string name = argc > 1 ? argv[1] : "s27";

  const netlist::Netlist cut = circuits::circuit_by_name(name);
  const fault::FaultSet faults = fault::FaultSet::collapsed(cut);
  fault::FaultSimulator simulator(cut, faults);

  core::FlowConfig cfg;
  cfg.tgen.max_length = 1024;
  cfg.procedure.sequence_length = 500;
  const core::FlowResult flow = core::run_flow(simulator, name, cfg);

  const core::SelfTestHardware st = core::assemble_self_test(
      cut, faults, flow.pruned.omega, flow.procedure.sequence_length, {});

  std::printf("%s self-test chip:\n", name.c_str());
  std::printf("  interface: 1 input (R), %zu outputs (signature)\n",
              st.netlist.primary_outputs().size());
  std::printf("  test: %zu sessions x %zu cycles (+%zu warm-up gated)\n",
              st.session_count, st.session_length, st.warmup_cycles);
  std::printf("  golden signature: 0x%08x\n", st.expected_signature);

  // Run the healthy chip.
  sim::GoodSimulator sim(st.netlist);
  sim.step(std::vector<sim::Val3>{sim::Val3::kOne});
  for (std::size_t t = 0; t < st.total_cycles(); ++t)
    sim.step(std::vector<sim::Val3>{sim::Val3::kZero});
  std::uint32_t sig = 0;
  bool binary = true;
  for (std::size_t k = 0; k < st.misr_state.size(); ++k) {
    const sim::Val3 v = sim.value(st.misr_state[k]);
    if (v == sim::Val3::kX) binary = false;
    if (v == sim::Val3::kOne) sig |= std::uint32_t{1} << k;
  }
  std::printf("  healthy run: signature 0x%08x -> %s\n", sig,
              binary && sig == st.expected_signature ? "PASS" : "FAIL");

  const std::string path = util::out_path(name + "_selftest.bench");
  netlist::write_bench_file(st.netlist, path);
  std::printf("  wrote %s (%zu gates, %zu flip-flops)\n", path.c_str(),
              st.netlist.stats().logic_gates, st.netlist.stats().flip_flops);
  return binary && sig == st.expected_signature ? 0 : 1;
}
