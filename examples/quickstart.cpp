// Quickstart: the paper's method end to end on ISCAS-89 s27, in ~60 lines.
//
//   1. load a circuit and build its collapsed stuck-at fault list,
//   2. take a deterministic test sequence (here: the paper's Table 1),
//   3. derive subsequence weights and weight assignments from it,
//   4. prune the assignment set by reverse-order simulation,
//   5. check the weighted sequences reach the same coverage as T.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "circuits/iscas.h"
#include "core/procedure.h"
#include "core/reverse_sim.h"
#include "fault/fault_list.h"
#include "fault/fault_sim.h"

int main() {
  using namespace wbist;

  // 1. Circuit + fault universe.
  const netlist::Netlist circuit = circuits::s27();
  const fault::FaultSet faults = fault::FaultSet::collapsed(circuit);
  fault::FaultSimulator simulator(circuit, faults);
  std::printf("circuit %s: %zu collapsed stuck-at faults\n",
              circuit.name().c_str(), faults.size());

  // 2. Deterministic test sequence T and detection times u_det(f).
  const sim::TestSequence T = circuits::s27_paper_sequence();
  const fault::DetectionResult under_t = simulator.run_all(T);
  std::printf("deterministic sequence: %zu vectors, detects %zu faults\n",
              T.length(), under_t.detected_count);

  // 3. Select weight assignments (Section 4.2 of the paper).
  core::ProcedureConfig config;
  config.sequence_length = 100;  // L_G
  const core::ProcedureResult procedure = core::select_weight_assignments(
      simulator, T, under_t.detection_time, config);
  std::printf("procedure: %zu weight assignments, fault efficiency %.1f%%\n",
              procedure.omega.size(),
              100.0 * procedure.fault_efficiency());

  // 4. Reverse-order simulation (Section 4.3) removes redundant ones.
  std::vector<fault::FaultId> targets;
  for (fault::FaultId f = 0; f < faults.size(); ++f)
    if (under_t.detected(f)) targets.push_back(f);
  const core::ReverseSimResult pruned = core::reverse_order_prune(
      simulator, procedure.omega, targets, procedure.sequence_length);
  std::printf("after reverse-order simulation: %zu assignments\n",
              pruned.omega.size());
  for (const core::WeightAssignment& w : pruned.omega)
    std::printf("  weights: %s\n", w.str().c_str());

  // 5. Verify: the union of the weighted sequences covers every target.
  std::vector<bool> covered(targets.size(), false);
  for (const core::WeightAssignment& w : pruned.omega) {
    const auto det = simulator.run(w.expand(procedure.sequence_length),
                                   targets);
    for (std::size_t k = 0; k < targets.size(); ++k)
      if (det.detected(k)) covered[k] = true;
  }
  std::size_t n = 0;
  for (const bool c : covered) n += c ? 1 : 0;
  std::printf("weighted sequences cover %zu/%zu target faults\n", n,
              targets.size());
  return n == targets.size() ? 0 : 1;
}
